//! Pipeline configuration: machine width, reorder-buffer size, functional
//! units, latencies and the memory model (fixed latency or a simulated
//! L1/L2 cache hierarchy).

use crate::cache::HierarchyConfig;
use mom_isa::FuClass;

/// The memory system seen by loads and stores.
///
/// The paper's experiments use the `Fixed` form — a single latency (1, 12 or
/// 50 cycles) with no bandwidth restriction beyond the configured ports.
/// `Hierarchy` replaces it with a simulated set-associative L1/L2 data cache
/// driven by the effective addresses the functional simulator records in the
/// trace; each memory instruction is charged its own hit/miss latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryModel {
    /// Every memory access costs the same `latency` cycles.
    Fixed {
        /// Access latency in cycles (the paper uses 1, 12 and 50).
        latency: u64,
    },
    /// A simulated L1/L2 cache hierarchy with per-access latencies.
    Hierarchy(HierarchyConfig),
}

impl MemoryModel {
    /// Perfect cache: 1-cycle latency (the paper's baseline experiments).
    pub const PERFECT: MemoryModel = MemoryModel::Fixed { latency: 1 };
    /// L2 hit: 12-cycle latency.
    pub const L2: MemoryModel = MemoryModel::Fixed { latency: 12 };
    /// Main memory / streaming: 50-cycle latency.
    pub const MAIN_MEMORY: MemoryModel = MemoryModel::Fixed { latency: 50 };
    /// The default simulated L1/L2 hierarchy (the "real cache" variant of
    /// the Figure 5 experiment).
    pub const CACHE: MemoryModel = MemoryModel::Hierarchy(HierarchyConfig::DEFAULT);

    /// The three latency points of the paper's Figure 5.
    pub const FIGURE5_POINTS: [MemoryModel; 3] = [
        MemoryModel::PERFECT,
        MemoryModel::L2,
        MemoryModel::MAIN_MEMORY,
    ];

    /// The best-case (L1-hit) latency of the model: the fixed latency, or
    /// the hierarchy's L1 hit latency.  This is also what memory
    /// instructions without address metadata are charged under a hierarchy.
    pub fn base_latency(&self) -> u64 {
        match self {
            MemoryModel::Fixed { latency } => *latency,
            MemoryModel::Hierarchy(h) => h.l1.hit_latency,
        }
    }

    /// The hierarchy configuration, when this model simulates one.
    pub fn hierarchy(&self) -> Option<&HierarchyConfig> {
        match self {
            MemoryModel::Fixed { .. } => None,
            MemoryModel::Hierarchy(h) => Some(h),
        }
    }

    /// A short label for reports: the latency for fixed models ("1", "12",
    /// "50"), `"cache"` for the hierarchy.
    pub fn label(&self) -> String {
        match self {
            MemoryModel::Fixed { latency } => latency.to_string(),
            MemoryModel::Hierarchy(_) => "cache".to_string(),
        }
    }

    /// Validates the model.  The base (L1-hit) latency must be at least one
    /// cycle: a 0-cycle memory would let loads complete the cycle they
    /// issue, outside the timing model's domain.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_latency() == 0 {
            return Err("memory latency must be at least 1 cycle".into());
        }
        match self {
            MemoryModel::Fixed { .. } => Ok(()),
            MemoryModel::Hierarchy(h) => h.validate(),
        }
    }
}

impl std::fmt::Display for MemoryModel {
    /// Formats the model as its report label (see [`MemoryModel::label`]),
    /// which round-trips through [`MemoryModel::from_str`].
    ///
    /// [`MemoryModel::from_str`]: std::str::FromStr::from_str
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error returned when a memory-model name cannot be parsed; its `Display`
/// lists the accepted spellings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMemoryModelError {
    got: String,
}

impl std::fmt::Display for ParseMemoryModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown memory model '{}' (expected a latency in cycles, \
             \"perfect\", \"l2\", \"main\", or \"cache\"/\"l1l2\")",
            self.got
        )
    }
}

impl std::error::Error for ParseMemoryModelError {}

impl std::str::FromStr for MemoryModel {
    type Err = ParseMemoryModelError;

    /// Parses a memory-model axis name as used by experiment grids and the
    /// `momsim` CLI: a plain integer is a fixed latency in cycles, and the
    /// named points are `perfect` (1 cycle), `l2` (12 cycles), `main`
    /// (50 cycles) and `cache`/`l1l2` (the default simulated hierarchy).
    ///
    /// ```
    /// use mom_pipeline::MemoryModel;
    /// assert_eq!("50".parse(), Ok(MemoryModel::MAIN_MEMORY));
    /// assert_eq!("cache".parse(), Ok(MemoryModel::CACHE));
    /// assert!("dram".parse::<MemoryModel>().unwrap_err().to_string().contains("cache"));
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "perfect" => Ok(MemoryModel::PERFECT),
            "l2" => Ok(MemoryModel::L2),
            "main" | "mem" | "memory" => Ok(MemoryModel::MAIN_MEMORY),
            "cache" | "l1l2" => Ok(MemoryModel::CACHE),
            other => match other.parse::<u64>() {
                Ok(latency) => Ok(MemoryModel::Fixed { latency }),
                Err(_) => Err(ParseMemoryModelError { got: s.to_string() }),
            },
        }
    }
}

/// Number of units and execution latency for one functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuPool {
    /// Number of identical units of this class.
    pub count: usize,
    /// Execution latency in cycles (result available `latency` cycles after
    /// issue, on top of any multi-cycle occupancy of vector instructions).
    pub latency: u64,
    /// Whether the unit is pipelined (can accept a new instruction every
    /// cycle). The MOM transpose unit is the only non-pipelined unit.
    pub pipelined: bool,
}

/// Full configuration of the out-of-order core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Fetch = decode = issue = commit width (the paper's "way").
    pub width: usize,
    /// Reorder-buffer (instruction window) size.
    pub rob_size: usize,
    /// Number of parallel lanes of the multimedia functional units: how many
    /// 64-bit rows of a matrix instruction execute per cycle.
    pub media_lanes: usize,
    /// Number of 64-bit words the vector memory port moves per cycle.
    pub vec_mem_words: usize,
    /// Idealised memory model.
    pub memory: MemoryModel,
    /// Per-class functional unit pools.
    pub int_alu: FuPool,
    /// Integer multiplier pool.
    pub int_mul: FuPool,
    /// Branch unit pool.
    pub branch: FuPool,
    /// Scalar/MMX memory port pool.
    pub mem_port: FuPool,
    /// Vector (MOM) memory port pool.
    pub vec_mem_port: FuPool,
    /// Packed ALU pool.
    pub media_alu: FuPool,
    /// Packed multiplier pool.
    pub media_mul: FuPool,
    /// Pack/unpack unit pool.
    pub media_pack: FuPool,
    /// Matrix transpose unit pool.
    pub media_transpose: FuPool,
}

impl PipelineConfig {
    /// Starts a validated [`PipelineConfigBuilder`]: the paper's 4-way
    /// reference machine with every machine parameter exposed as a
    /// sweepable axis.
    ///
    /// ```
    /// use mom_pipeline::{MemoryModel, PipelineConfig};
    ///
    /// let config = PipelineConfig::builder()
    ///     .issue_width(4)
    ///     .rob(48)
    ///     .lanes(2)
    ///     .memory(MemoryModel::CACHE)
    ///     .build()
    ///     .expect("a valid configuration");
    /// assert_eq!(config.width, 4);
    /// assert_eq!(config.rob_size, 48);
    /// assert_eq!(config.media_lanes, 2);
    /// ```
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder::default()
    }

    /// The configuration the paper uses for a machine of the given issue
    /// width ("way 1", "way 2", "way 4", "way 8"), with a perfect (1-cycle)
    /// memory.  Thin wrapper over [`PipelineConfig::builder`].
    ///
    /// # Panics
    /// Panics if `width` is outside `1..=16`; use the builder to handle the
    /// error instead.
    pub fn way(width: usize) -> Self {
        Self::builder()
            .issue_width(width)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Functional units scale with the width the way the R10K-derived Jinks
    /// configuration does: `width` simple integer ALUs, one integer
    /// multiplier, `max(1, width/2)` memory ports and `max(1, width/2)` of
    /// each multimedia unit. Latencies follow the paper's remark that
    /// multimedia (sub-word) operations are shorter than their full 64-bit
    /// scalar counterparts.
    fn derived(width: usize) -> Self {
        let half = width.div_ceil(2);
        // The multimedia units have `max(2, width/2)` parallel 64-bit lanes
        // (the paper's "N vector pipes"), and the vector memory port moves
        // the same number of words per cycle, so the matrix datapath grows
        // with the scalar core as in the paper's scaling discussion.
        let lanes = (width / 2).max(2);
        PipelineConfig {
            width,
            rob_size: 16 * width,
            media_lanes: lanes,
            vec_mem_words: lanes,
            memory: MemoryModel::PERFECT,
            int_alu: FuPool {
                count: width,
                latency: 1,
                pipelined: true,
            },
            int_mul: FuPool {
                count: 1,
                latency: 7,
                pipelined: true,
            },
            branch: FuPool {
                count: 1.max(width / 4),
                latency: 1,
                pipelined: true,
            },
            mem_port: FuPool {
                count: half,
                latency: 1, // replaced by the memory model at simulation time
                pipelined: true,
            },
            vec_mem_port: FuPool {
                count: 1,
                latency: 1, // replaced by the memory model at simulation time
                pipelined: true,
            },
            media_alu: FuPool {
                count: half,
                latency: 1,
                pipelined: true,
            },
            media_mul: FuPool {
                count: half,
                latency: 3,
                pipelined: true,
            },
            media_pack: FuPool {
                count: half,
                latency: 1,
                pipelined: true,
            },
            media_transpose: FuPool {
                count: 1,
                latency: 10, // the paper's "8 + C cycles"
                pipelined: false,
            },
        }
    }

    /// Same as [`PipelineConfig::way`] but with the given memory latency
    /// (the paper's Figure 5 sweeps 1, 12 and 50 cycles on the 4-way core).
    /// Thin wrapper over [`PipelineConfig::builder`].
    pub fn way_with_memory(width: usize, memory: MemoryModel) -> Self {
        Self::builder()
            .issue_width(width)
            .memory(memory)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The functional-unit pool serving a given class.
    pub fn pool(&self, class: FuClass) -> FuPool {
        match class {
            FuClass::IntAlu => self.int_alu,
            FuClass::IntMul => self.int_mul,
            FuClass::Branch => self.branch,
            FuClass::Mem => self.mem_port,
            FuClass::VecMem => self.vec_mem_port,
            FuClass::MediaAlu => self.media_alu,
            FuClass::MediaMul => self.media_mul,
            FuClass::MediaPack => self.media_pack,
            FuClass::MediaTranspose => self.media_transpose,
        }
    }

    /// The base execution latency of an instruction class, taking the
    /// memory model into account for loads and stores.  Under a cache
    /// hierarchy this is the L1-hit latency; the timing simulator replaces
    /// it per instruction with the simulated hit/miss latency when the trace
    /// entry carries address metadata.
    pub fn latency(&self, class: FuClass) -> u64 {
        match class {
            FuClass::Mem | FuClass::VecMem => self.memory.base_latency(),
            _ => self.pool(class).latency,
        }
    }

    /// Validates the configuration (all pools non-empty, sensible sizes).
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 {
            return Err("issue width must be at least 1".into());
        }
        if self.rob_size < self.width {
            return Err("the reorder buffer must hold at least one fetch group".into());
        }
        if self.media_lanes == 0 || self.vec_mem_words == 0 {
            return Err("multimedia lane counts must be at least 1".into());
        }
        for class in FuClass::ALL {
            if self.pool(class).count == 0 {
                return Err(format!("functional-unit pool {class} is empty"));
            }
        }
        self.memory.validate()?;
        Ok(())
    }
}

impl Default for PipelineConfig {
    /// The paper's reference machine: the 4-way core with perfect memory.
    fn default() -> Self {
        Self::way(4)
    }
}

/// Validated builder for [`PipelineConfig`]: every machine parameter of the
/// out-of-order core is a settable axis.
///
/// Unset axes derive from the issue width exactly as the paper's "way N"
/// presets do (functional-unit counts, reorder-buffer size and lane counts
/// all scale with the width), so a builder that only sets `issue_width`
/// reproduces [`PipelineConfig::way`] bit-for-bit.  Setting
/// [`lanes`](PipelineConfigBuilder::lanes) also widens the vector memory
/// port to match (the paper couples the two), unless
/// [`vec_mem_words`](PipelineConfigBuilder::vec_mem_words) is set
/// explicitly.
///
/// ```
/// use mom_isa::FuClass;
/// use mom_pipeline::{FuPool, MemoryModel, PipelineConfig};
///
/// let config = PipelineConfig::builder()
///     .issue_width(8)
///     .rob(64)
///     .lanes(4)
///     .memory(MemoryModel::L2)
///     .pool(FuClass::IntMul, FuPool { count: 2, latency: 7, pipelined: true })
///     .build()
///     .expect("a valid configuration");
/// assert_eq!(config.vec_mem_words, 4, "lanes() widens the vector port");
/// assert_eq!(config.pool(FuClass::IntMul).count, 2);
///
/// // Invalid axes are reported, not asserted:
/// assert!(PipelineConfig::builder().rob(1).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineConfigBuilder {
    width: Option<usize>,
    rob_size: Option<usize>,
    media_lanes: Option<usize>,
    vec_mem_words: Option<usize>,
    memory: Option<MemoryModel>,
    pools: Vec<(FuClass, FuPool)>,
}

impl PipelineConfigBuilder {
    /// Fetch = decode = issue = commit width (the paper's "way";
    /// default 4).  All unset axes re-derive from this width.
    pub fn issue_width(mut self, width: usize) -> Self {
        self.width = Some(width);
        self
    }

    /// Reorder-buffer (instruction window) size (default `16 × width`).
    pub fn rob(mut self, rob_size: usize) -> Self {
        self.rob_size = Some(rob_size);
        self
    }

    /// Number of parallel 64-bit lanes of the multimedia functional units
    /// (default `max(2, width / 2)`).  Also sets the vector memory port
    /// width unless [`vec_mem_words`](Self::vec_mem_words) is given.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.media_lanes = Some(lanes);
        self
    }

    /// Number of 64-bit words the vector memory port moves per cycle
    /// (default: the lane count).
    pub fn vec_mem_words(mut self, words: usize) -> Self {
        self.vec_mem_words = Some(words);
        self
    }

    /// The memory model (default [`MemoryModel::PERFECT`]).
    pub fn memory(mut self, memory: MemoryModel) -> Self {
        self.memory = Some(memory);
        self
    }

    /// Overrides one functional-unit pool (count, latency, pipelining).
    /// Later calls for the same class win.
    pub fn pool(mut self, class: FuClass, pool: FuPool) -> Self {
        self.pools.push((class, pool));
        self
    }

    /// Builds and validates the configuration.
    ///
    /// # Errors
    /// Returns a human-readable message when an axis is out of range (the
    /// issue width must be in `1..=16`) or the assembled configuration
    /// fails [`PipelineConfig::validate`].
    pub fn build(self) -> Result<PipelineConfig, String> {
        let width = self.width.unwrap_or(4);
        if !(1..=16).contains(&width) {
            return Err(format!("issue width must be in 1..=16, got {width}"));
        }
        let mut config = PipelineConfig::derived(width);
        if let Some(rob_size) = self.rob_size {
            config.rob_size = rob_size;
        }
        if let Some(lanes) = self.media_lanes {
            config.media_lanes = lanes;
            config.vec_mem_words = lanes;
        }
        if let Some(words) = self.vec_mem_words {
            config.vec_mem_words = words;
        }
        if let Some(memory) = self.memory {
            config.memory = memory;
        }
        for (class, pool) in self.pools {
            match class {
                FuClass::IntAlu => config.int_alu = pool,
                FuClass::IntMul => config.int_mul = pool,
                FuClass::Branch => config.branch = pool,
                FuClass::Mem => config.mem_port = pool,
                FuClass::VecMem => config.vec_mem_port = pool,
                FuClass::MediaAlu => config.media_alu = pool,
                FuClass::MediaMul => config.media_mul = pool,
                FuClass::MediaPack => config.media_pack = pool,
                FuClass::MediaTranspose => config.media_transpose = pool,
            }
        }
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn way_presets_scale_units() {
        let w1 = PipelineConfig::way(1);
        let w8 = PipelineConfig::way(8);
        assert_eq!(w1.int_alu.count, 1);
        assert_eq!(w8.int_alu.count, 8);
        assert_eq!(w1.mem_port.count, 1);
        assert_eq!(w8.mem_port.count, 4);
        assert!(w8.rob_size > w1.rob_size);
        for w in [1, 2, 4, 8] {
            assert!(PipelineConfig::way(w).validate().is_ok());
        }
    }

    #[test]
    fn memory_model_presets() {
        assert_eq!(MemoryModel::PERFECT.base_latency(), 1);
        assert_eq!(MemoryModel::L2.base_latency(), 12);
        assert_eq!(MemoryModel::MAIN_MEMORY.base_latency(), 50);
        let c = PipelineConfig::way_with_memory(4, MemoryModel::MAIN_MEMORY);
        assert_eq!(c.latency(FuClass::Mem), 50);
        assert_eq!(c.latency(FuClass::VecMem), 50);
        assert_eq!(c.latency(FuClass::IntAlu), 1);
    }

    #[test]
    fn hierarchy_model_accessors_and_labels() {
        assert_eq!(MemoryModel::CACHE.base_latency(), 1);
        assert!(MemoryModel::CACHE.hierarchy().is_some());
        assert!(MemoryModel::PERFECT.hierarchy().is_none());
        assert_eq!(MemoryModel::PERFECT.label(), "1");
        assert_eq!(MemoryModel::MAIN_MEMORY.label(), "50");
        assert_eq!(MemoryModel::CACHE.label(), "cache");
        let c = PipelineConfig::way_with_memory(4, MemoryModel::CACHE);
        assert!(c.validate().is_ok());
        assert_eq!(c.latency(FuClass::Mem), 1, "base latency is an L1 hit");
    }

    #[test]
    fn validation_covers_the_memory_model() {
        let mut h = crate::cache::HierarchyConfig::DEFAULT;
        h.l1.sets = 0;
        let mut c = PipelineConfig::way(4);
        c.memory = MemoryModel::Hierarchy(h);
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_the_four_way_core() {
        let c = PipelineConfig::default();
        assert_eq!(c.width, 4);
        assert_eq!(c.memory, MemoryModel::PERFECT);
    }

    #[test]
    fn transpose_unit_is_not_pipelined() {
        let c = PipelineConfig::default();
        assert!(!c.pool(FuClass::MediaTranspose).pipelined);
        assert!(c.pool(FuClass::MediaAlu).pipelined);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = PipelineConfig::way(4);
        c.rob_size = 1;
        assert!(c.validate().is_err());
        let mut c = PipelineConfig::way(4);
        c.media_alu.count = 0;
        assert!(c.validate().is_err());
        let mut c = PipelineConfig::way(4);
        c.media_lanes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn way_rejects_zero() {
        let _ = PipelineConfig::way(0);
    }

    #[test]
    fn builder_defaults_reproduce_the_way_presets() {
        for width in [1, 2, 4, 8, 16] {
            let built = PipelineConfig::builder()
                .issue_width(width)
                .build()
                .unwrap();
            let preset = PipelineConfig::way(width);
            assert_eq!(format!("{built:?}"), format!("{preset:?}"), "width {width}");
        }
        // The builder's default width is the paper's reference machine.
        let built = PipelineConfig::builder().build().unwrap();
        assert_eq!(built.width, PipelineConfig::default().width);
    }

    #[test]
    fn builder_overrides_each_axis() {
        let c = PipelineConfig::builder()
            .issue_width(2)
            .rob(99)
            .lanes(8)
            .memory(MemoryModel::MAIN_MEMORY)
            .build()
            .unwrap();
        assert_eq!((c.width, c.rob_size, c.media_lanes), (2, 99, 8));
        assert_eq!(c.vec_mem_words, 8, "lanes() pulls the vector port along");
        assert_eq!(c.memory, MemoryModel::MAIN_MEMORY);
        let c = PipelineConfig::builder()
            .lanes(8)
            .vec_mem_words(2)
            .build()
            .unwrap();
        assert_eq!((c.media_lanes, c.vec_mem_words), (8, 2));
        let pool = FuPool {
            count: 3,
            latency: 5,
            pipelined: false,
        };
        let c = PipelineConfig::builder()
            .pool(FuClass::MediaMul, pool)
            .build()
            .unwrap();
        assert_eq!(c.pool(FuClass::MediaMul), pool);
    }

    #[test]
    fn builder_rejects_invalid_axes_without_panicking() {
        assert!(PipelineConfig::builder().issue_width(0).build().is_err());
        assert!(PipelineConfig::builder().issue_width(64).build().is_err());
        assert!(PipelineConfig::builder().rob(1).build().is_err());
        assert!(PipelineConfig::builder().lanes(0).build().is_err());
        let empty = FuPool {
            count: 0,
            latency: 1,
            pipelined: true,
        };
        assert!(PipelineConfig::builder()
            .pool(FuClass::IntAlu, empty)
            .build()
            .is_err());
    }

    #[test]
    fn memory_model_names_round_trip() {
        for model in [
            MemoryModel::PERFECT,
            MemoryModel::L2,
            MemoryModel::MAIN_MEMORY,
            MemoryModel::CACHE,
            MemoryModel::Fixed { latency: 23 },
        ] {
            assert_eq!(model.to_string().parse(), Ok(model));
        }
        // Named spellings and case-insensitivity.
        assert_eq!("PERFECT".parse(), Ok(MemoryModel::PERFECT));
        assert_eq!("l2".parse(), Ok(MemoryModel::L2));
        assert_eq!("main".parse(), Ok(MemoryModel::MAIN_MEMORY));
        assert_eq!("l1l2".parse(), Ok(MemoryModel::CACHE));
    }

    #[test]
    fn zero_cycle_memory_is_rejected() {
        // "0" parses (it is a well-formed latency) but fails validation, so
        // the builder and the experiment layer both refuse it.
        let zero: MemoryModel = "0".parse().unwrap();
        assert!(zero.validate().is_err());
        assert!(PipelineConfig::builder().memory(zero).build().is_err());
        let mut h = crate::cache::HierarchyConfig::DEFAULT;
        h.l1.hit_latency = 0;
        assert!(MemoryModel::Hierarchy(h).validate().is_err());
    }

    #[test]
    fn memory_model_parse_errors_list_the_valid_values() {
        let err = "sdram".parse::<MemoryModel>().unwrap_err().to_string();
        for expected in ["sdram", "latency", "perfect", "l2", "main", "cache", "l1l2"] {
            assert!(err.contains(expected), "{err:?} should mention {expected}");
        }
        assert!("-3".parse::<MemoryModel>().is_err());
    }
}
