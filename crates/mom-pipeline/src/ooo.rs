//! The out-of-order execution engine.
//!
//! A cycle-by-cycle model of the paper's Jinks simulator: instructions are
//! dispatched in order into a reorder buffer (renaming is modelled by
//! last-writer tracking, i.e. unlimited physical registers — the paper notes
//! register pressure is not the bottleneck and that MOM in fact *reduces*
//! the number of physical registers needed), issue out-of-order when their
//! operands are ready and a functional unit of the right class is free,
//! execute for their latency (plus a multi-cycle occupancy for matrix
//! instructions), and commit in order.
//!
//! The engine is **incremental**: [`PipelineSim`] consumes the dynamic
//! instruction stream one [`TraceEntry`] at a time ([`PipelineSim::feed`],
//! or as a [`TraceSink`] attached directly to the functional simulator) and
//! produces the final [`SimResult`] on [`PipelineSim::finish`].  A cycle is
//! only simulated once enough of the stream has arrived to determine that
//! cycle's dispatch group, so the incremental result is identical to
//! replaying a materialised trace — which is exactly what the batch
//! convenience wrapper [`Pipeline::simulate`] does.

use crate::config::PipelineConfig;
use crate::stats::SimResult;
use mom_arch::{Trace, TraceEntry, TraceSink};
use mom_isa::FuClass;
use std::collections::VecDeque;

/// Number of distinct register ids (see `mom_isa::Reg::id`).
const REG_ID_SPACE: usize = 256;

/// One instruction in flight (a reorder-buffer entry), or renamed and
/// waiting to be dispatched.
#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    /// Dynamic sequence number (index in the stream).
    seq: u64,
    /// Functional-unit class.
    fu: FuClass,
    /// Cycles of functional-unit occupancy (ceil(VL / lanes) for matrix
    /// instructions, 1 otherwise).
    occupancy: u64,
    /// Execution latency (result available `latency + occupancy - 1` cycles
    /// after issue).
    latency: u64,
    /// Elementary operations performed (for the OPI statistics).
    ops: u64,
    /// Whether this is a multimedia instruction.
    is_media: bool,
    /// Whether this instruction accesses memory.
    is_memory: bool,
    /// Sequence numbers of the producing instructions of each source.
    deps: [u64; 4],
    /// Number of valid entries in `deps`.
    dep_count: u8,
    /// Whether the instruction has been issued.
    issued: bool,
    /// Cycle at which the result is available (valid once issued).
    complete_cycle: u64,
}

/// The incremental out-of-order timing consumer.
///
/// Feed it retired instructions ([`PipelineSim::feed`]) as they stream out
/// of the functional simulator, then call [`PipelineSim::finish`] for the
/// [`SimResult`].  It also implements [`TraceSink`], so it can be attached
/// directly to `Machine::run_with_sink` — fusing functional and timing
/// simulation into a single bounded-memory pass.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    config: PipelineConfig,
    /// Renamed instructions not yet dispatched into the window.  Bounded:
    /// [`PipelineSim::feed`] drains it down to below one fetch group.
    pending: VecDeque<WindowEntry>,
    /// The reorder buffer.
    window: VecDeque<WindowEntry>,
    /// Per-unit busy-until cycle, indexed by [`FuClass::ALL`] position.
    fu_busy: Vec<Vec<u64>>,
    /// Last writer (sequence number) of each architectural register.
    last_writer: [Option<u64>; REG_ID_SPACE],
    /// Sequence number assigned to the next fed entry.
    next_seq: u64,
    /// Sequence number of the next entry to dispatch (= dispatched count).
    next_dispatch: u64,
    /// Committed instruction count.
    committed: u64,
    /// Current cycle.
    cycle: u64,
    /// Statistics accumulated at commit.
    result: SimResult,
}

impl PipelineSim {
    /// Creates an incremental consumer for the given machine configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: PipelineConfig) -> Self {
        config.validate().expect("invalid pipeline configuration");
        let fu_busy = FuClass::ALL
            .iter()
            .map(|c| vec![0u64; config.pool(*c).count])
            .collect();
        PipelineSim {
            pending: VecDeque::new(),
            window: VecDeque::with_capacity(config.rob_size),
            fu_busy,
            last_writer: [None; REG_ID_SPACE],
            next_seq: 0,
            next_dispatch: 0,
            committed: 0,
            cycle: 0,
            result: SimResult::default(),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Occupancy (in cycles) of one dynamic instruction on its functional
    /// unit.
    fn occupancy(&self, entry: &TraceEntry) -> u64 {
        let vl = entry.vl.max(1) as u64;
        match entry.instr.fu_class() {
            FuClass::VecMem => vl.div_ceil(self.config.vec_mem_words as u64),
            FuClass::MediaTranspose => self.config.media_transpose.latency,
            _ if entry.instr.is_vl_dependent() => vl.div_ceil(self.config.media_lanes as u64),
            _ => 1,
        }
    }

    /// Consumes the next retired instruction of the stream.
    ///
    /// Renaming happens immediately (it only depends on stream order); the
    /// cycle-by-cycle simulation advances as soon as a full fetch group is
    /// buffered, so the consumer holds at most `width - 1` undispatched
    /// instructions plus the reorder buffer — bounded memory regardless of
    /// stream length.
    pub fn feed(&mut self, entry: TraceEntry) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let instr = &entry.instr;
        let mut deps = [0u64; 4];
        let mut dep_count = 0u8;
        for reg in instr.sources().iter() {
            if reg.is_zero() {
                continue;
            }
            if let Some(w) = self.last_writer[reg.id()] {
                deps[dep_count as usize] = w;
                dep_count += 1;
            }
        }
        for reg in instr.dests().iter() {
            if !reg.is_zero() {
                self.last_writer[reg.id()] = Some(seq);
            }
        }
        self.pending.push_back(WindowEntry {
            seq,
            fu: instr.fu_class(),
            occupancy: self.occupancy(&entry),
            latency: self.config.latency(instr.fu_class()),
            ops: entry.ops(),
            is_media: instr.is_media(),
            is_memory: instr.is_memory(),
            deps,
            dep_count,
            issued: false,
            complete_cycle: u64::MAX,
        });
        // A cycle's dispatch group is fully determined once `width` renamed
        // instructions are buffered (dispatch consumes at most `width` per
        // cycle), so simulating now is indistinguishable from batch replay.
        while self.pending.len() >= self.config.width {
            self.step_cycle();
        }
    }

    /// Runs the simulation to completion and returns the result.
    pub fn finish(mut self) -> SimResult {
        while self.committed < self.next_seq {
            self.step_cycle();
        }
        self.result.cycles = self.cycle;
        self.result
    }

    /// Simulates one cycle: commit, issue, dispatch — the same stage order
    /// as the paper's trace-driven Jinks runs.
    fn step_cycle(&mut self) {
        let cfg = &self.config;

        // ----------------------------------------------------------
        // Commit: in order, up to `width` completed instructions.
        // ----------------------------------------------------------
        let mut committed_this_cycle = 0;
        while committed_this_cycle < cfg.width {
            match self.window.front() {
                Some(e) if e.issued && e.complete_cycle <= self.cycle => {
                    self.result.instructions += 1;
                    self.result.operations += e.ops;
                    if e.is_media {
                        self.result.media_instructions += 1;
                    }
                    if e.is_memory {
                        self.result.memory_instructions += 1;
                    }
                    self.window.pop_front();
                    self.committed += 1;
                    committed_this_cycle += 1;
                }
                _ => break,
            }
        }

        // ----------------------------------------------------------
        // Issue: oldest-first, up to `width` ready instructions whose
        // functional unit is free.
        // ----------------------------------------------------------
        let front_seq = self
            .window
            .front()
            .map(|e| e.seq)
            .unwrap_or(self.next_dispatch);
        let class_index = |c: FuClass| FuClass::ALL.iter().position(|x| *x == c).unwrap();
        let mut issued_this_cycle = 0;
        for i in 0..self.window.len() {
            if issued_this_cycle >= cfg.width {
                break;
            }
            if self.window[i].issued {
                continue;
            }
            // Operand readiness: every producer must have completed.
            let mut ready = true;
            for d in 0..self.window[i].dep_count as usize {
                let dep_seq = self.window[i].deps[d];
                if dep_seq >= front_seq {
                    let dep = &self.window[(dep_seq - front_seq) as usize];
                    if !dep.issued || dep.complete_cycle > self.cycle {
                        ready = false;
                        break;
                    }
                }
                // Producers older than the window head have committed and
                // are therefore complete.
            }
            if !ready {
                continue;
            }
            // Structural hazard: find a free unit of the class.
            let fu = self.window[i].fu;
            let pool = cfg.pool(fu);
            let ci = class_index(fu);
            let Some(unit) = self.fu_busy[ci].iter().position(|&b| b <= self.cycle) else {
                continue;
            };
            // Issue.
            let occupancy = self.window[i].occupancy;
            let latency = self.window[i].latency;
            let busy_for = if pool.pipelined {
                occupancy
            } else {
                latency.max(occupancy)
            };
            self.fu_busy[ci][unit] = self.cycle + busy_for;
            *self.result.fu_busy_cycles.entry(fu).or_insert(0) += busy_for;
            let e = &mut self.window[i];
            e.issued = true;
            e.complete_cycle = self.cycle + latency + occupancy - 1;
            issued_this_cycle += 1;
        }

        // ----------------------------------------------------------
        // Dispatch: in order, up to `width` renamed instructions into
        // the reorder buffer.
        // ----------------------------------------------------------
        let mut dispatched_this_cycle = 0;
        let mut stalled = false;
        while dispatched_this_cycle < cfg.width && !self.pending.is_empty() {
            if self.window.len() >= cfg.rob_size {
                stalled = true;
                break;
            }
            let e = self.pending.pop_front().expect("pending is non-empty");
            self.window.push_back(e);
            self.next_dispatch += 1;
            dispatched_this_cycle += 1;
        }
        if stalled {
            self.result.dispatch_stall_cycles += 1;
        }
        self.result.max_rob_occupancy = self.result.max_rob_occupancy.max(self.window.len());

        self.cycle += 1;
    }
}

impl TraceSink for PipelineSim {
    fn retire(&mut self, entry: TraceEntry) {
        self.feed(entry);
    }
}

/// A fan-out consumer: one functional run drives several machine
/// configurations at once (the paper's way 1/2/4/8 sweep from a single
/// instruction stream).
#[derive(Debug, Clone, Default)]
pub struct PipelineFanout {
    sims: Vec<PipelineSim>,
}

impl PipelineFanout {
    /// Creates a fan-out over the given configurations, in order.
    pub fn new<I: IntoIterator<Item = PipelineConfig>>(configs: I) -> Self {
        PipelineFanout {
            sims: configs.into_iter().map(PipelineSim::new).collect(),
        }
    }

    /// Adds one more consumer.
    pub fn push(&mut self, config: PipelineConfig) {
        self.sims.push(PipelineSim::new(config));
    }

    /// Number of consumers.
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the fan-out has no consumers.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Feeds one entry to every consumer.
    pub fn feed(&mut self, entry: TraceEntry) {
        for sim in &mut self.sims {
            sim.feed(entry);
        }
    }

    /// Finishes every consumer, returning one [`SimResult`] per
    /// configuration, in construction order.
    pub fn finish(self) -> Vec<SimResult> {
        self.sims.into_iter().map(PipelineSim::finish).collect()
    }
}

impl TraceSink for PipelineFanout {
    fn retire(&mut self, entry: TraceEntry) {
        self.feed(entry);
    }
}

/// The out-of-order timing simulator (batch interface).
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: PipelineConfig) -> Self {
        config.validate().expect("invalid pipeline configuration");
        Pipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Starts an incremental consumer with this pipeline's configuration.
    pub fn streaming(&self) -> PipelineSim {
        PipelineSim::new(self.config.clone())
    }

    /// Replays a materialised dynamic trace — a convenience wrapper that
    /// feeds the whole trace through the incremental consumer.
    pub fn simulate(&self, trace: &Trace) -> SimResult {
        let mut sim = self.streaming();
        for e in trace.iter() {
            sim.feed(*e);
        }
        sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryModel;
    use mom_arch::TraceEntry;
    use mom_isa::prelude::*;
    use mom_isa::Instruction;

    fn entry(instr: Instruction, vl: u16) -> TraceEntry {
        TraceEntry {
            instr,
            vl,
            taken: false,
        }
    }

    fn add(rd: u8, ra: u8, rb: u8) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            rd,
            ra,
            rb,
        }
    }

    fn load(rd: u8, base: u8) -> Instruction {
        Instruction::Load {
            size: MemSize::Quad,
            signed: false,
            rd,
            base,
            offset: 0,
        }
    }

    fn sim(width: usize, entries: Vec<TraceEntry>) -> SimResult {
        let trace: Trace = entries.into_iter().collect();
        Pipeline::new(PipelineConfig::way(width)).simulate(&trace)
    }

    fn sim_mem(width: usize, latency: u64, entries: Vec<TraceEntry>) -> SimResult {
        let trace: Trace = entries.into_iter().collect();
        let cfg = PipelineConfig::way_with_memory(width, MemoryModel { latency });
        Pipeline::new(cfg).simulate(&trace)
    }

    #[test]
    fn empty_trace() {
        let r = sim(4, vec![]);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn empty_stream_finishes_at_cycle_zero() {
        let r = PipelineSim::new(PipelineConfig::way(4)).finish();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn incremental_feed_matches_batch_simulate() {
        // A mixed trace with dependences, memory and matrix instructions.
        let mut entries = Vec::new();
        for i in 0..100u8 {
            entries.push(entry(add(i % 8, (i + 1) % 8, (i + 2) % 8), 1));
            if i % 3 == 0 {
                entries.push(entry(load(i % 8, 30), 1));
            }
            if i % 7 == 0 {
                entries.push(entry(
                    Instruction::MomOp {
                        op: PackedOp::Add(Overflow::Wrap),
                        ty: ElemType::U8,
                        md: 0,
                        ma: 1,
                        mb: MomOperand::Mat(2),
                    },
                    (i % 16 + 1) as u16,
                ));
            }
        }
        for width in [1, 2, 4, 8] {
            let trace: Trace = entries.iter().copied().collect();
            let batch = Pipeline::new(PipelineConfig::way(width)).simulate(&trace);
            let mut streaming = PipelineSim::new(PipelineConfig::way(width));
            for e in &entries {
                streaming.feed(*e);
            }
            let streamed = streaming.finish();
            assert_eq!(batch.cycles, streamed.cycles, "width {width}");
            assert_eq!(batch.instructions, streamed.instructions);
            assert_eq!(batch.operations, streamed.operations);
            assert_eq!(batch.max_rob_occupancy, streamed.max_rob_occupancy);
            assert_eq!(batch.dispatch_stall_cycles, streamed.dispatch_stall_cycles);
            assert_eq!(batch.fu_busy_cycles, streamed.fu_busy_cycles);
        }
    }

    #[test]
    fn pending_buffer_stays_below_one_fetch_group() {
        let mut sim = PipelineSim::new(PipelineConfig::way(4));
        for i in 0..1000u32 {
            sim.feed(entry(add((i % 16) as u8, 20, 21), 1));
            assert!(sim.pending.len() < 4, "pending must stay bounded");
            assert!(sim.window.len() <= sim.config.rob_size);
        }
        let r = sim.finish();
        assert_eq!(r.instructions, 1000);
    }

    #[test]
    fn fanout_matches_individual_runs() {
        let entries: Vec<TraceEntry> = (0..64)
            .map(|i| entry(add((i % 8) as u8, 20, 21), 1))
            .collect();
        let mut fanout = PipelineFanout::new([1, 2, 4, 8].map(PipelineConfig::way));
        for e in &entries {
            fanout.feed(*e);
        }
        let results = fanout.finish();
        let trace: Trace = entries.into_iter().collect();
        for (width, got) in [1usize, 2, 4, 8].into_iter().zip(&results) {
            let alone = Pipeline::new(PipelineConfig::way(width)).simulate(&trace);
            assert_eq!(alone.cycles, got.cycles, "width {width}");
            assert_eq!(alone.instructions, got.instructions, "width {width}");
        }
    }

    #[test]
    fn dependent_chain_runs_at_one_per_cycle() {
        // r1 = r1 + r1, 64 times: a serial chain.
        let n = 64;
        let entries = vec![entry(add(1, 1, 1), 1); n];
        let r = sim(8, entries);
        assert_eq!(r.instructions, n as u64);
        // One add per cycle plus a small pipeline fill overhead.
        assert!(r.cycles >= n as u64, "cycles {} < {}", r.cycles, n);
        assert!(r.cycles <= n as u64 + 8, "chain too slow: {}", r.cycles);
    }

    #[test]
    fn independent_adds_scale_with_width() {
        // 256 fully independent adds (different destination registers,
        // sources never written).
        let entries: Vec<TraceEntry> = (0..256)
            .map(|i| entry(add((i % 16) as u8, 20, 21), 1))
            .collect();
        let narrow = sim(1, entries.clone());
        let wide = sim(8, entries);
        assert!(
            narrow.cycles > 2 * wide.cycles,
            "8-way ({}) should be much faster than 1-way ({})",
            wide.cycles,
            narrow.cycles
        );
        assert!(wide.ipc() > 3.0, "8-way IPC too low: {}", wide.ipc());
        assert!(narrow.ipc() <= 1.01);
    }

    #[test]
    fn memory_latency_hurts_dependent_loads() {
        // Pointer chase: each load feeds the next address.
        let n = 32;
        let entries = vec![entry(load(1, 1), 1); n];
        let fast = sim_mem(4, 1, entries.clone());
        let slow = sim_mem(4, 50, entries);
        assert!(
            slow.cycles > 40 * fast.cycles / 2,
            "50-cycle latency must dominate a pointer chase: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn independent_loads_are_pipelined_through_the_ports() {
        // Independent loads to different registers: the window and the two
        // ports let latency overlap, so the slowdown from latency 1 to 50 is
        // far less than 50x.
        let entries: Vec<TraceEntry> = (0..256)
            .map(|i| entry(load((i % 8) as u8, 30), 1))
            .collect();
        let fast = sim_mem(4, 1, entries.clone());
        let slow = sim_mem(4, 50, entries);
        let slowdown = slow.cycles as f64 / fast.cycles as f64;
        assert!(
            slowdown < 10.0,
            "independent loads should hide latency, slowdown {slowdown}"
        );
        assert!(slowdown > 1.0);
    }

    #[test]
    fn matrix_instruction_occupies_lanes_for_vl_cycles() {
        // One MOM add of VL=16 on a 2-lane unit: occupancy 8 cycles.
        let mom_add = Instruction::MomOp {
            op: PackedOp::Add(Overflow::Wrap),
            ty: ElemType::U8,
            md: 0,
            ma: 1,
            mb: MomOperand::Mat(2),
        };
        let r16 = sim(4, vec![entry(mom_add, 16)]);
        let r4 = sim(4, vec![entry(mom_add, 4)]);
        assert!(r16.cycles > r4.cycles, "longer vectors must take longer");
        assert_eq!(r16.operations, 128);
        assert_eq!(r4.operations, 32);
    }

    #[test]
    fn mdmx_accumulator_recurrence_serialises() {
        // 32 accumulate steps on the same accumulator: the read-modify-write
        // dependence forces them to execute back to back at the multiplier
        // latency (3 cycles each).
        let acc_step = Instruction::AccStep {
            op: AccumOp::MulAdd,
            ty: ElemType::I16,
            acc: 0,
            va: 1,
            vb: 2,
        };
        let r = sim(8, vec![entry(acc_step, 1); 32]);
        assert!(
            r.cycles >= 32 * 3,
            "accumulator recurrence must serialise at the multiply latency, got {}",
            r.cycles
        );
    }

    #[test]
    fn mom_accumulator_amortises_the_recurrence() {
        // The same 32 x 4-lane multiply-accumulate work expressed as two
        // MOM matrix accumulate instructions of VL=16 finishes much sooner
        // than 32 chained MDMX steps.
        let mdmx_step = Instruction::AccStep {
            op: AccumOp::MulAdd,
            ty: ElemType::I16,
            acc: 0,
            va: 1,
            vb: 2,
        };
        let mom_step = Instruction::MomAccStep {
            op: AccumOp::MulAdd,
            ty: ElemType::I16,
            acc: 0,
            ma: 1,
            mb: MomOperand::Mat(2),
        };
        let mdmx = sim(4, vec![entry(mdmx_step, 1); 32]);
        let mom = sim(4, vec![entry(mom_step, 16); 2]);
        assert_eq!(mdmx.operations, mom.operations);
        assert!(
            mom.cycles * 2 < mdmx.cycles,
            "MOM ({}) must amortise the accumulator recurrence vs MDMX ({})",
            mom.cycles,
            mdmx.cycles
        );
    }

    #[test]
    fn vector_load_amortises_memory_latency() {
        // 16 rows loaded by one MOM load vs 16 dependent-free MMX loads,
        // with 50-cycle memory: the matrix load pays the latency once.
        let mom_load = Instruction::MomLoad {
            md: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        let mmx_load = |vd: u8| Instruction::MmxLoad {
            vd,
            base: 1,
            offset: 0,
            ty: ElemType::U8,
        };
        // Give the scalar version a dependent consumer after each load to
        // model a typical use, and the MOM version a single consumer.
        let mut mmx_entries = Vec::new();
        for i in 0..16u8 {
            mmx_entries.push(entry(mmx_load(i % 8), 1));
        }
        let mom_entries = vec![entry(mom_load, 16)];
        let mmx = sim_mem(1, 50, mmx_entries);
        let mom = sim_mem(1, 50, mom_entries);
        assert_eq!(mmx.operations, mom.operations);
        assert!(
            mom.cycles < mmx.cycles,
            "a single strided matrix load ({}) must not be slower than 16 scalar packed loads ({}) on a narrow machine",
            mom.cycles,
            mmx.cycles
        );
    }

    #[test]
    fn rob_pressure_is_reported() {
        // A long-latency load at the head blocks commit; the window fills up
        // and dispatch stalls.
        let mut entries = vec![entry(load(1, 1), 1)];
        for _ in 0..300 {
            entries.push(entry(add(2, 2, 2), 1));
        }
        let r = sim_mem(4, 50, entries);
        assert!(r.max_rob_occupancy >= 32);
        assert!(r.dispatch_stall_cycles > 0);
    }

    #[test]
    fn transpose_unit_is_not_pipelined() {
        // Four back-to-back transposes on different registers (no data
        // dependence): a non-pipelined 10-cycle unit serialises them.
        let entries = vec![
            entry(
                Instruction::MomTranspose {
                    md: 0,
                    ms: 4,
                    ty: ElemType::U8,
                },
                1,
            ),
            entry(
                Instruction::MomTranspose {
                    md: 1,
                    ms: 5,
                    ty: ElemType::U8,
                },
                1,
            ),
            entry(
                Instruction::MomTranspose {
                    md: 2,
                    ms: 6,
                    ty: ElemType::U8,
                },
                1,
            ),
            entry(
                Instruction::MomTranspose {
                    md: 3,
                    ms: 7,
                    ty: ElemType::U8,
                },
                1,
            ),
        ];
        let r = sim(4, entries);
        assert!(
            r.cycles >= 4 * 10,
            "four non-pipelined transposes must serialise: {}",
            r.cycles
        );
    }

    #[test]
    fn stats_accumulate_media_and_memory_counts() {
        let mom_load = Instruction::MomLoad {
            md: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        let r = sim(4, vec![entry(mom_load, 8), entry(add(1, 2, 3), 1)]);
        assert_eq!(r.instructions, 2);
        assert_eq!(r.media_instructions, 1);
        assert_eq!(r.memory_instructions, 1);
        assert_eq!(r.operations, 64 + 1);
        assert!(r.fu_busy_cycles[&FuClass::VecMem] >= 4);
    }
}
