//! The out-of-order execution engine.
//!
//! A cycle-by-cycle model of the paper's Jinks simulator: instructions are
//! dispatched in order into a reorder buffer (renaming is modelled by
//! last-writer tracking, i.e. unlimited physical registers — the paper notes
//! register pressure is not the bottleneck and that MOM in fact *reduces*
//! the number of physical registers needed), issue out-of-order when their
//! operands are ready and a functional unit of the right class is free,
//! execute for their latency (plus a multi-cycle occupancy for matrix
//! instructions), and commit in order.
//!
//! The engine is **incremental**: [`PipelineSim`] consumes the dynamic
//! instruction stream one [`TraceEntry`] at a time ([`PipelineSim::feed`],
//! or as a [`TraceSink`] attached directly to the functional simulator) and
//! produces the final [`SimResult`] on [`PipelineSim::finish`].  A cycle is
//! only simulated once enough of the stream has arrived to determine that
//! cycle's dispatch group, so the incremental result is identical to
//! replaying a materialised trace — which is exactly what the batch
//! convenience wrapper [`Pipeline::simulate`] does.
//!
//! Memory instructions are charged by the configured [`crate::MemoryModel`]:
//! a fixed latency, or a per-access hit/miss latency from the simulated
//! L1/L2 [`crate::cache`] hierarchy driven by the effective addresses in the
//! trace.  The issue stage additionally enforces **memory ordering**: a load
//! may not issue past an older store that has not completed unless both
//! addresses are known and disjoint (there is no store-to-load forwarding).

use crate::cache::CacheSim;
use crate::config::PipelineConfig;
use crate::stats::SimResult;
use mom_arch::{Trace, TraceEntry, TraceSink};
use mom_isa::FuClass;
use std::collections::VecDeque;

/// Number of distinct register ids (see `mom_isa::Reg::id`).
const REG_ID_SPACE: usize = 256;

/// One instruction in flight (a reorder-buffer entry), or renamed and
/// waiting to be dispatched.
#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    /// Dynamic sequence number (index in the stream).
    seq: u64,
    /// Functional-unit class.
    fu: FuClass,
    /// Cycles of functional-unit occupancy: ceil(VL / lanes) for matrix
    /// compute instructions, ceil(bytes moved / port bytes-per-cycle) for
    /// vector memory accesses, 1 otherwise (see [`PipelineSim::occupancy`]).
    occupancy: u64,
    /// Execution latency (result available `latency + occupancy - 1` cycles
    /// after issue).
    latency: u64,
    /// Elementary operations performed (for the OPI statistics).
    ops: u64,
    /// Whether this is a multimedia instruction.
    is_media: bool,
    /// Whether this instruction accesses memory.
    is_memory: bool,
    /// Whether this instruction writes memory.
    is_store: bool,
    /// Conservative byte interval `[start, end)` the access covers, when the
    /// trace carries address metadata.
    mem_span: Option<(u64, u64)>,
    /// Sequence numbers of the producing instructions of each source.
    deps: [u64; 4],
    /// Number of valid entries in `deps`.
    dep_count: u8,
    /// Whether the instruction has been issued.
    issued: bool,
    /// Cycle at which the result is available (valid once issued).
    complete_cycle: u64,
}

/// The incremental out-of-order timing consumer.
///
/// Feed it retired instructions ([`PipelineSim::feed`]) as they stream out
/// of the functional simulator, then call [`PipelineSim::finish`] for the
/// [`SimResult`].  It also implements [`TraceSink`], so it can be attached
/// directly to `Machine::run_with_sink` — fusing functional and timing
/// simulation into a single bounded-memory pass.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    config: PipelineConfig,
    /// The simulated data-cache hierarchy, when the memory model is
    /// [`crate::MemoryModel::Hierarchy`].  Accessed in trace order at rename
    /// time, which keeps streaming and batch replay bit-identical.
    dcache: Option<CacheSim>,
    /// Renamed instructions not yet dispatched into the window.  Bounded:
    /// [`PipelineSim::feed`] drains it down to below one fetch group.
    pending: VecDeque<WindowEntry>,
    /// The reorder buffer.
    window: VecDeque<WindowEntry>,
    /// Per-unit busy-until cycle, indexed by [`FuClass::ALL`] position.
    fu_busy: Vec<Vec<u64>>,
    /// Last writer (sequence number) of each architectural register.
    last_writer: [Option<u64>; REG_ID_SPACE],
    /// Sequence number assigned to the next fed entry.
    next_seq: u64,
    /// Sequence number of the next entry to dispatch (= dispatched count).
    next_dispatch: u64,
    /// Committed instruction count.
    committed: u64,
    /// Current cycle.
    cycle: u64,
    /// Statistics accumulated at commit.
    result: SimResult,
}

impl PipelineSim {
    /// Creates an incremental consumer for the given machine configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: PipelineConfig) -> Self {
        config.validate().expect("invalid pipeline configuration");
        let fu_busy = FuClass::ALL
            .iter()
            .map(|c| vec![0u64; config.pool(*c).count])
            .collect();
        PipelineSim {
            dcache: config.memory.hierarchy().copied().map(CacheSim::new),
            pending: VecDeque::new(),
            window: VecDeque::with_capacity(config.rob_size),
            fu_busy,
            last_writer: [None; REG_ID_SPACE],
            next_seq: 0,
            next_dispatch: 0,
            committed: 0,
            cycle: 0,
            result: SimResult::default(),
            config,
        }
    }

    /// Creates an incremental consumer that **resumes** on a warm data
    /// cache: the tag state of `dcache` (typically obtained from a previous
    /// phase's [`PipelineSim::into_parts`]) is kept, its hit/miss counters
    /// are zeroed, and everything else — window, renaming, cycle count —
    /// starts fresh.
    ///
    /// This is the phase boundary of a multi-kernel application pipeline:
    /// the pipeline drains between phases (a function-call boundary), but
    /// the memory hierarchy does not forget, so a phase re-reading a
    /// predecessor's buffers observes warm-cache hits.  Under a
    /// [`crate::MemoryModel::Fixed`] configuration the warm cache is
    /// ignored, so phase chaining cannot perturb fixed-latency timing.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.  In debug builds,
    /// additionally asserts that a provided warm cache has the same
    /// geometry the configuration's hierarchy describes.
    pub fn resume(config: PipelineConfig, dcache: Option<CacheSim>) -> Self {
        let mut sim = PipelineSim::new(config);
        if let (Some(slot), Some(mut warm)) = (sim.dcache.as_mut(), dcache) {
            debug_assert_eq!(
                warm.config(),
                slot.config(),
                "resumed cache geometry must match the configuration"
            );
            warm.reset_stats();
            *slot = warm;
        }
        sim
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Occupancy (in cycles) of one dynamic instruction on its functional
    /// unit.
    ///
    /// The vector memory port moves `vec_mem_words` 64-bit words per cycle,
    /// so a matrix access occupies it for the bytes it actually moves (from
    /// the traced access size), not a flat per-row count.  The non-pipelined
    /// transpose unit has occupancy 1 — serialisation comes from the unit
    /// staying busy for the full latency (`busy_for = latency.max(occupancy)`
    /// at issue), not from inflating the occupancy, which would double-count
    /// the latency in the completion time.
    fn occupancy(&self, entry: &TraceEntry) -> u64 {
        let vl = entry.vl.max(1) as u64;
        match entry.instr.fu_class() {
            FuClass::VecMem => {
                let port_bytes = self.config.vec_mem_words as u64 * 8;
                let bytes = entry.mem.map_or(vl * 8, |m| m.total_bytes());
                bytes.div_ceil(port_bytes).max(1)
            }
            _ if entry.instr.is_vl_dependent() => vl.div_ceil(self.config.media_lanes as u64),
            _ => 1,
        }
    }

    /// Consumes the next retired instruction of the stream.
    ///
    /// Renaming happens immediately (it only depends on stream order); the
    /// cycle-by-cycle simulation advances as soon as a full fetch group is
    /// buffered, so the consumer holds at most `width - 1` undispatched
    /// instructions plus the reorder buffer — bounded memory regardless of
    /// stream length.
    pub fn feed(&mut self, entry: TraceEntry) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let instr = &entry.instr;
        let mut deps = [0u64; 4];
        let mut dep_count = 0u8;
        for reg in instr.sources().iter() {
            if reg.is_zero() {
                continue;
            }
            if let Some(w) = self.last_writer[reg.id()] {
                // An instruction has at most four register sources
                // (`RegList` enforces it), so the dependence list cannot
                // overflow; guard anyway so a future wider instruction
                // degrades to a dropped dependence instead of a panic.
                debug_assert!(
                    (dep_count as usize) < deps.len(),
                    "more producers than dependence slots for {instr:?}"
                );
                if (dep_count as usize) < deps.len() {
                    deps[dep_count as usize] = w;
                    dep_count += 1;
                }
            }
        }
        for reg in instr.dests().iter() {
            if !reg.is_zero() {
                self.last_writer[reg.id()] = Some(seq);
            }
        }
        let fu = instr.fu_class();
        // Memory instructions are charged by the memory model: the fixed
        // latency, or the simulated per-access hit/miss latency when the
        // model is a hierarchy and the trace carries addresses (entries
        // without metadata are assumed to hit L1).
        let latency = match (fu, &mut self.dcache) {
            (FuClass::Mem | FuClass::VecMem, Some(cache)) => match entry.mem.as_ref() {
                Some(access) => cache.access(access),
                None => cache.hit_latency(),
            },
            _ => self.config.latency(fu),
        };
        self.pending.push_back(WindowEntry {
            seq,
            fu,
            occupancy: self.occupancy(&entry),
            latency,
            ops: entry.ops(),
            is_media: instr.is_media(),
            is_memory: instr.is_memory(),
            is_store: instr.is_store(),
            mem_span: entry.mem.map(|m| m.span()),
            deps,
            dep_count,
            issued: false,
            complete_cycle: u64::MAX,
        });
        // A cycle's dispatch group is fully determined once `width` renamed
        // instructions are buffered (dispatch consumes at most `width` per
        // cycle), so simulating now is indistinguishable from batch replay.
        while self.pending.len() >= self.config.width {
            self.step_cycle();
        }
    }

    /// Runs the simulation to completion and returns the result.
    pub fn finish(self) -> SimResult {
        self.into_parts().0
    }

    /// Runs the simulation to completion and returns the result **plus** the
    /// simulated data cache in its final (warm) state, so a follow-up phase
    /// can [`PipelineSim::resume`] on it.  The cache is `None` under a
    /// fixed-latency memory model.
    pub fn into_parts(mut self) -> (SimResult, Option<CacheSim>) {
        while self.committed < self.next_seq {
            self.step_cycle();
        }
        self.result.cycles = self.cycle;
        if let Some(cache) = &self.dcache {
            self.result.cache = cache.stats;
        }
        (self.result, self.dcache)
    }

    /// Simulates one cycle: commit, issue, dispatch — the same stage order
    /// as the paper's trace-driven Jinks runs.
    fn step_cycle(&mut self) {
        let cfg = &self.config;

        // ----------------------------------------------------------
        // Commit: in order, up to `width` completed instructions.
        // ----------------------------------------------------------
        let mut committed_this_cycle = 0;
        while committed_this_cycle < cfg.width {
            match self.window.front() {
                Some(e) if e.issued && e.complete_cycle <= self.cycle => {
                    self.result.instructions += 1;
                    self.result.operations += e.ops;
                    if e.is_media {
                        self.result.media_instructions += 1;
                    }
                    if e.is_memory {
                        self.result.memory_instructions += 1;
                    }
                    self.window.pop_front();
                    self.committed += 1;
                    committed_this_cycle += 1;
                }
                _ => break,
            }
        }

        // ----------------------------------------------------------
        // Issue: oldest-first, up to `width` ready instructions whose
        // functional unit is free.
        // ----------------------------------------------------------
        let front_seq = self
            .window
            .front()
            .map(|e| e.seq)
            .unwrap_or(self.next_dispatch);
        let class_index = |c: FuClass| FuClass::ALL.iter().position(|x| *x == c).unwrap();
        let mut issued_this_cycle = 0;
        for i in 0..self.window.len() {
            if issued_this_cycle >= cfg.width {
                break;
            }
            if self.window[i].issued {
                continue;
            }
            // Operand readiness: every producer must have completed.
            let mut ready = true;
            for d in 0..self.window[i].dep_count as usize {
                let dep_seq = self.window[i].deps[d];
                if dep_seq >= front_seq {
                    let dep = &self.window[(dep_seq - front_seq) as usize];
                    if !dep.issued || dep.complete_cycle > self.cycle {
                        ready = false;
                        break;
                    }
                }
                // Producers older than the window head have committed and
                // are therefore complete.
            }
            if !ready {
                continue;
            }
            // Memory ordering: a load may not issue past an older store that
            // has not yet written memory, unless both addresses are known
            // and the byte ranges are disjoint.  There is no store-to-load
            // forwarding, so "written" means completed.  Stores older than
            // the window head have committed and are done.
            if self.window[i].is_memory && !self.window[i].is_store {
                let load_span = self.window[i].mem_span;
                for j in 0..i {
                    let store = &self.window[j];
                    if !store.is_store || (store.issued && store.complete_cycle <= self.cycle) {
                        continue;
                    }
                    let disjoint = matches!(
                        (load_span, store.mem_span),
                        (Some(a), Some(b)) if !mom_arch::spans_overlap(a, b)
                    );
                    if !disjoint {
                        ready = false;
                        break;
                    }
                }
                if !ready {
                    continue;
                }
            }
            // Structural hazard: find a free unit of the class.
            let fu = self.window[i].fu;
            let pool = cfg.pool(fu);
            let ci = class_index(fu);
            let Some(unit) = self.fu_busy[ci].iter().position(|&b| b <= self.cycle) else {
                continue;
            };
            // Issue.
            let occupancy = self.window[i].occupancy;
            let latency = self.window[i].latency;
            let busy_for = if pool.pipelined {
                occupancy
            } else {
                latency.max(occupancy)
            };
            self.fu_busy[ci][unit] = self.cycle + busy_for;
            *self.result.fu_busy_cycles.entry(fu).or_insert(0) += busy_for;
            let e = &mut self.window[i];
            e.issued = true;
            e.complete_cycle = self.cycle + latency + occupancy - 1;
            issued_this_cycle += 1;
        }

        // ----------------------------------------------------------
        // Dispatch: in order, up to `width` renamed instructions into
        // the reorder buffer.
        // ----------------------------------------------------------
        let mut dispatched_this_cycle = 0;
        let mut stalled = false;
        while dispatched_this_cycle < cfg.width && !self.pending.is_empty() {
            if self.window.len() >= cfg.rob_size {
                stalled = true;
                break;
            }
            let e = self.pending.pop_front().expect("pending is non-empty");
            self.window.push_back(e);
            self.next_dispatch += 1;
            dispatched_this_cycle += 1;
        }
        if stalled {
            self.result.dispatch_stall_cycles += 1;
        }
        self.result.max_rob_occupancy = self.result.max_rob_occupancy.max(self.window.len());

        self.cycle += 1;
    }
}

impl TraceSink for PipelineSim {
    fn retire(&mut self, entry: TraceEntry) {
        self.feed(entry);
    }
}

/// A fan-out consumer: one functional run drives several machine
/// configurations at once (the paper's way 1/2/4/8 sweep from a single
/// instruction stream).
#[derive(Debug, Clone, Default)]
pub struct PipelineFanout {
    sims: Vec<PipelineSim>,
}

impl PipelineFanout {
    /// Creates a fan-out over the given configurations, in order.
    pub fn new<I: IntoIterator<Item = PipelineConfig>>(configs: I) -> Self {
        PipelineFanout {
            sims: configs.into_iter().map(PipelineSim::new).collect(),
        }
    }

    /// Adds one more consumer.
    pub fn push(&mut self, config: PipelineConfig) {
        self.sims.push(PipelineSim::new(config));
    }

    /// Number of consumers.
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the fan-out has no consumers.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Feeds one entry to every consumer.
    pub fn feed(&mut self, entry: TraceEntry) {
        for sim in &mut self.sims {
            sim.feed(entry);
        }
    }

    /// Finishes every consumer, returning one [`SimResult`] per
    /// configuration, in construction order.
    pub fn finish(self) -> Vec<SimResult> {
        self.sims.into_iter().map(PipelineSim::finish).collect()
    }
}

impl TraceSink for PipelineFanout {
    fn retire(&mut self, entry: TraceEntry) {
        self.feed(entry);
    }
}

/// The out-of-order timing simulator (batch interface).
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: PipelineConfig) -> Self {
        config.validate().expect("invalid pipeline configuration");
        Pipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Starts an incremental consumer with this pipeline's configuration.
    pub fn streaming(&self) -> PipelineSim {
        PipelineSim::new(self.config.clone())
    }

    /// Replays a materialised dynamic trace — a convenience wrapper that
    /// feeds the whole trace through the incremental consumer.
    pub fn simulate(&self, trace: &Trace) -> SimResult {
        let mut sim = self.streaming();
        for e in trace.iter() {
            sim.feed(*e);
        }
        sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::HierarchyConfig;
    use crate::config::MemoryModel;
    use mom_arch::{MemAccess, TraceEntry};
    use mom_isa::prelude::*;
    use mom_isa::Instruction;

    fn entry(instr: Instruction, vl: u16) -> TraceEntry {
        TraceEntry {
            instr,
            vl,
            taken: false,
            mem: None,
        }
    }

    fn entry_at(instr: Instruction, vl: u16, mem: MemAccess) -> TraceEntry {
        TraceEntry {
            instr,
            vl,
            taken: false,
            mem: Some(mem),
        }
    }

    fn add(rd: u8, ra: u8, rb: u8) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            rd,
            ra,
            rb,
        }
    }

    fn load(rd: u8, base: u8) -> Instruction {
        Instruction::Load {
            size: MemSize::Quad,
            signed: false,
            rd,
            base,
            offset: 0,
        }
    }

    fn sim(width: usize, entries: Vec<TraceEntry>) -> SimResult {
        let trace: Trace = entries.into_iter().collect();
        Pipeline::new(PipelineConfig::way(width)).simulate(&trace)
    }

    fn sim_mem(width: usize, latency: u64, entries: Vec<TraceEntry>) -> SimResult {
        let trace: Trace = entries.into_iter().collect();
        let cfg = PipelineConfig::way_with_memory(width, MemoryModel::Fixed { latency });
        Pipeline::new(cfg).simulate(&trace)
    }

    fn store(rs: u8, base: u8) -> Instruction {
        Instruction::Store {
            size: MemSize::Quad,
            rs,
            base,
            offset: 0,
        }
    }

    #[test]
    fn empty_trace() {
        let r = sim(4, vec![]);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn empty_stream_finishes_at_cycle_zero() {
        let r = PipelineSim::new(PipelineConfig::way(4)).finish();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn incremental_feed_matches_batch_simulate() {
        // A mixed trace with dependences, memory and matrix instructions.
        let mut entries = Vec::new();
        for i in 0..100u8 {
            entries.push(entry(add(i % 8, (i + 1) % 8, (i + 2) % 8), 1));
            if i % 3 == 0 {
                entries.push(entry(load(i % 8, 30), 1));
            }
            if i % 7 == 0 {
                entries.push(entry(
                    Instruction::MomOp {
                        op: PackedOp::Add(Overflow::Wrap),
                        ty: ElemType::U8,
                        md: 0,
                        ma: 1,
                        mb: MomOperand::Mat(2),
                    },
                    (i % 16 + 1) as u16,
                ));
            }
        }
        for width in [1, 2, 4, 8] {
            let trace: Trace = entries.iter().copied().collect();
            let batch = Pipeline::new(PipelineConfig::way(width)).simulate(&trace);
            let mut streaming = PipelineSim::new(PipelineConfig::way(width));
            for e in &entries {
                streaming.feed(*e);
            }
            let streamed = streaming.finish();
            assert_eq!(batch.cycles, streamed.cycles, "width {width}");
            assert_eq!(batch.instructions, streamed.instructions);
            assert_eq!(batch.operations, streamed.operations);
            assert_eq!(batch.max_rob_occupancy, streamed.max_rob_occupancy);
            assert_eq!(batch.dispatch_stall_cycles, streamed.dispatch_stall_cycles);
            assert_eq!(batch.fu_busy_cycles, streamed.fu_busy_cycles);
        }
    }

    #[test]
    fn pending_buffer_stays_below_one_fetch_group() {
        let mut sim = PipelineSim::new(PipelineConfig::way(4));
        for i in 0..1000u32 {
            sim.feed(entry(add((i % 16) as u8, 20, 21), 1));
            assert!(sim.pending.len() < 4, "pending must stay bounded");
            assert!(sim.window.len() <= sim.config.rob_size);
        }
        let r = sim.finish();
        assert_eq!(r.instructions, 1000);
    }

    #[test]
    fn fanout_matches_individual_runs() {
        let entries: Vec<TraceEntry> = (0..64)
            .map(|i| entry(add((i % 8) as u8, 20, 21), 1))
            .collect();
        let mut fanout = PipelineFanout::new([1, 2, 4, 8].map(PipelineConfig::way));
        for e in &entries {
            fanout.feed(*e);
        }
        let results = fanout.finish();
        let trace: Trace = entries.into_iter().collect();
        for (width, got) in [1usize, 2, 4, 8].into_iter().zip(&results) {
            let alone = Pipeline::new(PipelineConfig::way(width)).simulate(&trace);
            assert_eq!(alone.cycles, got.cycles, "width {width}");
            assert_eq!(alone.instructions, got.instructions, "width {width}");
        }
    }

    #[test]
    fn dependent_chain_runs_at_one_per_cycle() {
        // r1 = r1 + r1, 64 times: a serial chain.
        let n = 64;
        let entries = vec![entry(add(1, 1, 1), 1); n];
        let r = sim(8, entries);
        assert_eq!(r.instructions, n as u64);
        // One add per cycle plus a small pipeline fill overhead.
        assert!(r.cycles >= n as u64, "cycles {} < {}", r.cycles, n);
        assert!(r.cycles <= n as u64 + 8, "chain too slow: {}", r.cycles);
    }

    #[test]
    fn independent_adds_scale_with_width() {
        // 256 fully independent adds (different destination registers,
        // sources never written).
        let entries: Vec<TraceEntry> = (0..256)
            .map(|i| entry(add((i % 16) as u8, 20, 21), 1))
            .collect();
        let narrow = sim(1, entries.clone());
        let wide = sim(8, entries);
        assert!(
            narrow.cycles > 2 * wide.cycles,
            "8-way ({}) should be much faster than 1-way ({})",
            wide.cycles,
            narrow.cycles
        );
        assert!(wide.ipc() > 3.0, "8-way IPC too low: {}", wide.ipc());
        assert!(narrow.ipc() <= 1.01);
    }

    #[test]
    fn memory_latency_hurts_dependent_loads() {
        // Pointer chase: each load feeds the next address.
        let n = 32;
        let entries = vec![entry(load(1, 1), 1); n];
        let fast = sim_mem(4, 1, entries.clone());
        let slow = sim_mem(4, 50, entries);
        assert!(
            slow.cycles > 40 * fast.cycles / 2,
            "50-cycle latency must dominate a pointer chase: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn independent_loads_are_pipelined_through_the_ports() {
        // Independent loads to different registers: the window and the two
        // ports let latency overlap, so the slowdown from latency 1 to 50 is
        // far less than 50x.
        let entries: Vec<TraceEntry> = (0..256)
            .map(|i| entry(load((i % 8) as u8, 30), 1))
            .collect();
        let fast = sim_mem(4, 1, entries.clone());
        let slow = sim_mem(4, 50, entries);
        let slowdown = slow.cycles as f64 / fast.cycles as f64;
        assert!(
            slowdown < 10.0,
            "independent loads should hide latency, slowdown {slowdown}"
        );
        assert!(slowdown > 1.0);
    }

    #[test]
    fn matrix_instruction_occupies_lanes_for_vl_cycles() {
        // One MOM add of VL=16 on a 2-lane unit: occupancy 8 cycles.
        let mom_add = Instruction::MomOp {
            op: PackedOp::Add(Overflow::Wrap),
            ty: ElemType::U8,
            md: 0,
            ma: 1,
            mb: MomOperand::Mat(2),
        };
        let r16 = sim(4, vec![entry(mom_add, 16)]);
        let r4 = sim(4, vec![entry(mom_add, 4)]);
        assert!(r16.cycles > r4.cycles, "longer vectors must take longer");
        assert_eq!(r16.operations, 128);
        assert_eq!(r4.operations, 32);
    }

    #[test]
    fn mdmx_accumulator_recurrence_serialises() {
        // 32 accumulate steps on the same accumulator: the read-modify-write
        // dependence forces them to execute back to back at the multiplier
        // latency (3 cycles each).
        let acc_step = Instruction::AccStep {
            op: AccumOp::MulAdd,
            ty: ElemType::I16,
            acc: 0,
            va: 1,
            vb: 2,
        };
        let r = sim(8, vec![entry(acc_step, 1); 32]);
        assert!(
            r.cycles >= 32 * 3,
            "accumulator recurrence must serialise at the multiply latency, got {}",
            r.cycles
        );
    }

    #[test]
    fn mom_accumulator_amortises_the_recurrence() {
        // The same 32 x 4-lane multiply-accumulate work expressed as two
        // MOM matrix accumulate instructions of VL=16 finishes much sooner
        // than 32 chained MDMX steps.
        let mdmx_step = Instruction::AccStep {
            op: AccumOp::MulAdd,
            ty: ElemType::I16,
            acc: 0,
            va: 1,
            vb: 2,
        };
        let mom_step = Instruction::MomAccStep {
            op: AccumOp::MulAdd,
            ty: ElemType::I16,
            acc: 0,
            ma: 1,
            mb: MomOperand::Mat(2),
        };
        let mdmx = sim(4, vec![entry(mdmx_step, 1); 32]);
        let mom = sim(4, vec![entry(mom_step, 16); 2]);
        assert_eq!(mdmx.operations, mom.operations);
        assert!(
            mom.cycles * 2 < mdmx.cycles,
            "MOM ({}) must amortise the accumulator recurrence vs MDMX ({})",
            mom.cycles,
            mdmx.cycles
        );
    }

    #[test]
    fn vector_load_amortises_memory_latency() {
        // 16 rows loaded by one MOM load vs 16 dependent-free MMX loads,
        // with 50-cycle memory: the matrix load pays the latency once.
        let mom_load = Instruction::MomLoad {
            md: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        let mmx_load = |vd: u8| Instruction::MmxLoad {
            vd,
            base: 1,
            offset: 0,
            ty: ElemType::U8,
        };
        // Give the scalar version a dependent consumer after each load to
        // model a typical use, and the MOM version a single consumer.
        let mut mmx_entries = Vec::new();
        for i in 0..16u8 {
            mmx_entries.push(entry(mmx_load(i % 8), 1));
        }
        let mom_entries = vec![entry(mom_load, 16)];
        let mmx = sim_mem(1, 50, mmx_entries);
        let mom = sim_mem(1, 50, mom_entries);
        assert_eq!(mmx.operations, mom.operations);
        assert!(
            mom.cycles < mmx.cycles,
            "a single strided matrix load ({}) must not be slower than 16 scalar packed loads ({}) on a narrow machine",
            mom.cycles,
            mmx.cycles
        );
    }

    #[test]
    fn rob_pressure_is_reported() {
        // A long-latency load at the head blocks commit; the window fills up
        // and dispatch stalls.
        let mut entries = vec![entry(load(1, 1), 1)];
        for _ in 0..300 {
            entries.push(entry(add(2, 2, 2), 1));
        }
        let r = sim_mem(4, 50, entries);
        assert!(r.max_rob_occupancy >= 32);
        assert!(r.dispatch_stall_cycles > 0);
    }

    #[test]
    fn transpose_unit_is_not_pipelined() {
        // Four back-to-back transposes on different registers (no data
        // dependence): a non-pipelined 10-cycle unit serialises them.
        let entries = vec![
            entry(
                Instruction::MomTranspose {
                    md: 0,
                    ms: 4,
                    ty: ElemType::U8,
                },
                1,
            ),
            entry(
                Instruction::MomTranspose {
                    md: 1,
                    ms: 5,
                    ty: ElemType::U8,
                },
                1,
            ),
            entry(
                Instruction::MomTranspose {
                    md: 2,
                    ms: 6,
                    ty: ElemType::U8,
                },
                1,
            ),
            entry(
                Instruction::MomTranspose {
                    md: 3,
                    ms: 7,
                    ty: ElemType::U8,
                },
                1,
            ),
        ];
        let r = sim(4, entries);
        assert!(
            r.cycles >= 4 * 10,
            "four non-pipelined transposes must serialise: {}",
            r.cycles
        );
    }

    #[test]
    fn transpose_latency_is_not_double_counted() {
        // A single transpose on an idle machine: issue + 10-cycle latency +
        // commit.  Before the occupancy fix the completion time was
        // `latency + occupancy - 1 = 19` cycles after issue — charging the
        // pool latency twice.
        let r = sim(
            4,
            vec![entry(
                Instruction::MomTranspose {
                    md: 0,
                    ms: 4,
                    ty: ElemType::U8,
                },
                1,
            )],
        );
        assert!(
            r.cycles >= 10 && r.cycles <= 14,
            "one transpose must take ~latency cycles, got {}",
            r.cycles
        );
    }

    #[test]
    fn vec_mem_occupancy_follows_traced_bytes() {
        // A 16-row matrix load moves 128 bytes; the 2-word (16-byte) port
        // needs 8 cycles whether the size comes from the metadata or from
        // the VL fallback.
        let mom_load = Instruction::MomLoad {
            md: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        let with_meta = sim(
            4,
            vec![entry_at(
                mom_load,
                16,
                MemAccess::strided(0x100, 8, 16, 8, false),
            )],
        );
        let without = sim(4, vec![entry(mom_load, 16)]);
        assert_eq!(with_meta.fu_busy_cycles[&FuClass::VecMem], 8);
        assert_eq!(without.fu_busy_cycles[&FuClass::VecMem], 8);
        assert_eq!(with_meta.cycles, without.cycles);
    }

    #[test]
    fn load_stalls_behind_older_overlapping_store() {
        // r1 <- mem (50 cycles), store r1 -> 0x100, load <- 0x100.
        // The final load overlaps the store and must wait for it; a load
        // from a disjoint address may issue around it.
        let chain = |load_addr: u64| {
            vec![
                entry_at(load(1, 10), 1, MemAccess::unit(0x500, 8, false)),
                entry_at(store(1, 11), 1, MemAccess::unit(0x100, 8, true)),
                entry_at(load(3, 12), 1, MemAccess::unit(load_addr, 8, false)),
            ]
        };
        let overlapping = sim_mem(4, 50, chain(0x100));
        let disjoint = sim_mem(4, 50, chain(0x200));
        assert!(
            overlapping.cycles >= disjoint.cycles + 40,
            "overlapping load ({}) must serialise behind the store ({})",
            overlapping.cycles,
            disjoint.cycles
        );
    }

    #[test]
    fn load_stalls_behind_older_unknown_address_store() {
        // The same chain, but the store carries no address metadata: the
        // load must conservatively wait even though its own address is known.
        let chain = |store_mem: Option<MemAccess>| {
            vec![
                entry_at(load(1, 10), 1, MemAccess::unit(0x500, 8, false)),
                TraceEntry {
                    instr: store(1, 11),
                    vl: 1,
                    taken: false,
                    mem: store_mem,
                },
                entry_at(load(3, 12), 1, MemAccess::unit(0x200, 8, false)),
            ]
        };
        let unknown = sim_mem(4, 50, chain(None));
        let known_disjoint = sim_mem(4, 50, chain(Some(MemAccess::unit(0x100, 8, true))));
        assert!(
            unknown.cycles >= known_disjoint.cycles + 40,
            "an unknown-address store must block younger loads ({} vs {})",
            unknown.cycles,
            known_disjoint.cycles
        );
    }

    #[test]
    fn widest_arity_instruction_renames_without_panicking() {
        // MomStore reads four registers (matrix, base, stride, VL); write
        // all four first so every source has a producer.
        let mut sim = PipelineSim::new(PipelineConfig::way(4));
        sim.feed(entry(Instruction::Li { rd: 1, imm: 0x100 }, 1));
        sim.feed(entry(Instruction::Li { rd: 2, imm: 8 }, 1));
        sim.feed(entry(Instruction::SetVlImm { vl: 8 }, 1));
        sim.feed(entry(
            Instruction::MomLoad {
                md: 0,
                base: 1,
                stride: 2,
                ty: ElemType::U8,
            },
            8,
        ));
        let mom_store = Instruction::MomStore {
            ms: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        assert_eq!(mom_store.sources().len(), 4, "widest-arity instruction");
        sim.feed(entry(mom_store, 8));
        let r = sim.finish();
        assert_eq!(r.instructions, 5);
    }

    #[test]
    fn hierarchy_charges_misses_then_hits() {
        let cfg = PipelineConfig::way_with_memory(4, MemoryModel::CACHE);
        let trace: Trace = vec![
            entry_at(load(1, 10), 1, MemAccess::unit(0x1000, 8, false)),
            entry_at(load(2, 10), 1, MemAccess::unit(0x1000, 8, false)),
        ]
        .into_iter()
        .collect();
        let r = Pipeline::new(cfg).simulate(&trace);
        assert_eq!(r.cache.l1_misses, 1, "cold miss");
        assert_eq!(r.cache.l2_misses, 1);
        assert_eq!(r.cache.l1_hits, 1, "second access hits the filled line");
        // The cold miss pays the full 1+12+50 chain.
        assert!(r.cycles > 60, "cold miss must dominate: {}", r.cycles);
        // A fixed 1-cycle model records no cache activity.
        let fixed = sim_mem(4, 1, vec![entry(load(1, 10), 1)]);
        assert_eq!(fixed.cache, Default::default());
    }

    #[test]
    fn zero_miss_cost_hierarchy_degenerates_to_fixed() {
        let mut h = HierarchyConfig::DEFAULT;
        h.l1.hit_latency = 5;
        h.l2.hit_latency = 0;
        h.memory_latency = 0;
        let entries = vec![
            entry_at(load(1, 10), 1, MemAccess::unit(0x500, 8, false)),
            entry(add(2, 1, 1), 1),
            entry_at(store(2, 11), 1, MemAccess::unit(0x100, 8, true)),
            entry_at(load(3, 12), 1, MemAccess::unit(0x100, 8, false)),
            entry(add(4, 3, 3), 1),
        ];
        let trace: Trace = entries.into_iter().collect();
        let hier = Pipeline::new(PipelineConfig::way_with_memory(
            4,
            MemoryModel::Hierarchy(h),
        ))
        .simulate(&trace);
        let fixed = Pipeline::new(PipelineConfig::way_with_memory(
            4,
            MemoryModel::Fixed { latency: 5 },
        ))
        .simulate(&trace);
        assert_eq!(hier.cycles, fixed.cycles);
        assert_eq!(hier.instructions, fixed.instructions);
        assert_eq!(hier.dispatch_stall_cycles, fixed.dispatch_stall_cycles);
    }

    #[test]
    fn into_parts_matches_finish_and_returns_the_cache() {
        let entries = vec![
            entry_at(load(1, 10), 1, MemAccess::unit(0x1000, 8, false)),
            entry(add(2, 1, 1), 1),
        ];
        let cfg = PipelineConfig::way_with_memory(4, MemoryModel::CACHE);
        let mut a = PipelineSim::new(cfg.clone());
        let mut b = PipelineSim::new(cfg);
        for e in &entries {
            a.feed(*e);
            b.feed(*e);
        }
        let finished = a.finish();
        let (result, cache) = b.into_parts();
        assert_eq!(finished.cycles, result.cycles);
        assert_eq!(finished.cache, result.cache);
        let cache = cache.expect("a hierarchy config must return its cache");
        assert_eq!(cache.stats, result.cache);
        // Fixed memory has no cache to hand over.
        let fixed = PipelineSim::new(PipelineConfig::way(4));
        assert!(fixed.into_parts().1.is_none());
    }

    #[test]
    fn resume_keeps_warm_lines_and_zeroes_phase_counters() {
        let probe = entry_at(load(1, 10), 1, MemAccess::unit(0x1000, 8, false));
        let cfg = PipelineConfig::way_with_memory(4, MemoryModel::CACHE);

        // Phase 1 takes the cold miss.
        let mut first = PipelineSim::new(cfg.clone());
        first.feed(probe);
        let (warm_up, cache) = first.into_parts();
        assert_eq!(warm_up.cache.l1_misses, 1);

        // Phase 2 resumes on the warm hierarchy: same access now hits L1,
        // and the phase's counters start from zero.
        let mut second = PipelineSim::resume(cfg.clone(), cache);
        second.feed(probe);
        let warm = second.finish();
        assert_eq!(warm.cache.l1_hits, 1, "warm line must hit");
        assert_eq!(warm.cache.l1_misses, 0, "phase counters are per-phase");
        assert!(
            warm.cycles < warm_up.cycles,
            "a warm phase ({}) must beat the cold one ({})",
            warm.cycles,
            warm_up.cycles
        );

        // A cold phase of the same stream pays the miss chain again.
        let mut cold = PipelineSim::resume(cfg, None);
        cold.feed(probe);
        assert_eq!(cold.finish().cache.l1_misses, 1);
    }

    #[test]
    fn resume_under_fixed_memory_ignores_the_warm_cache() {
        let probe = entry_at(load(1, 10), 1, MemAccess::unit(0x2000, 8, false));
        let mut donor = PipelineSim::new(PipelineConfig::way_with_memory(4, MemoryModel::CACHE));
        donor.feed(probe);
        let (_, cache) = donor.into_parts();

        let fixed_cfg = PipelineConfig::way_with_memory(4, MemoryModel::MAIN_MEMORY);
        let mut fresh = PipelineSim::new(fixed_cfg.clone());
        let mut resumed = PipelineSim::resume(fixed_cfg, cache);
        fresh.feed(probe);
        resumed.feed(probe);
        let fresh = fresh.finish();
        let resumed = resumed.finish();
        assert_eq!(fresh.cycles, resumed.cycles);
        assert_eq!(resumed.cache, Default::default());
    }

    #[test]
    fn stats_accumulate_media_and_memory_counts() {
        let mom_load = Instruction::MomLoad {
            md: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        let r = sim(4, vec![entry(mom_load, 8), entry(add(1, 2, 3), 1)]);
        assert_eq!(r.instructions, 2);
        assert_eq!(r.media_instructions, 1);
        assert_eq!(r.memory_instructions, 1);
        assert_eq!(r.operations, 64 + 1);
        assert!(r.fu_busy_cycles[&FuClass::VecMem] >= 4);
    }
}
