//! The out-of-order execution engine.
//!
//! A cycle-by-cycle model of the paper's Jinks simulator: instructions are
//! dispatched in order into a reorder buffer (renaming is modelled by
//! last-writer tracking, i.e. unlimited physical registers — the paper notes
//! register pressure is not the bottleneck and that MOM in fact *reduces*
//! the number of physical registers needed), issue out-of-order when their
//! operands are ready and a functional unit of the right class is free,
//! execute for their latency (plus a multi-cycle occupancy for matrix
//! instructions), and commit in order.
//!
//! The engine is **incremental**: [`PipelineSim`] consumes the dynamic
//! instruction stream one [`TraceEntry`] at a time ([`PipelineSim::feed`],
//! or as a [`TraceSink`] attached directly to the functional simulator) and
//! produces the final [`SimResult`] on [`PipelineSim::finish`].  A cycle is
//! only simulated once enough of the stream has arrived to determine that
//! cycle's dispatch group, so the incremental result is identical to
//! replaying a materialised trace — which is exactly what the batch
//! convenience wrapper [`Pipeline::simulate`] does.
//!
//! The engine is also **scan-free**: where the retained naive
//! implementation ([`crate::reference::ReferenceSim`]) walks the whole
//! reorder buffer every cycle and re-checks every producer and every older
//! store per candidate (`O(window²)` per cycle), this engine keeps
//! incremental state instead —
//!
//! * dependences are resolved **once, at rename time**, against the
//!   last-writer scoreboard: each entry carries only a count of
//!   still-unissued producers and the completion cycle of the latest issued
//!   one, and producers keep per-entry *wakeup lists* of their consumers,
//! * a **future-ready heap** (keyed by operand-ready cycle) and an ordered
//!   **ready queue** mean each cycle visits only the entries that can
//!   actually be considered for issue, not the whole window,
//! * a dedicated **store-address queue** holds just the in-flight stores,
//!   so the load/store ordering check inspects only those instead of every
//!   older window entry,
//! * per-class **free-unit min-heaps** replace the linear probe of the
//!   functional-unit busy tables, and [`FuClass::index`] replaces the
//!   per-issue scan of `FuClass::ALL`.
//!
//! The two implementations are cycle-for-cycle identical; the differential
//! property test (`tests/differential.rs`) and the directed store-queue
//! regressions in this module enforce it.
//!
//! Memory instructions are charged by the configured [`crate::MemoryModel`]:
//! a fixed latency, or a per-access hit/miss latency from the simulated
//! L1/L2 [`crate::cache`] hierarchy driven by the effective addresses in the
//! trace.  The issue stage additionally enforces **memory ordering**: a load
//! may not issue past an older store that has not completed unless both
//! addresses are known and disjoint (there is no store-to-load forwarding).

use crate::cache::CacheSim;
use crate::config::PipelineConfig;
use crate::stats::SimResult;
use mom_arch::{Trace, TraceEntry, TraceSink};
use mom_isa::FuClass;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Process-wide count of timing simulations constructed (every
/// [`PipelineSim`] built, including resumed app phases and the detailed
/// intervals inside sampled runs), registered in the `mom-obs` metrics
/// registry as `momsim_timing_simulations_total`. The incremental-sweep
/// tests assert this stays flat across a warm sweep: results served from
/// the artifact store must not build a single simulator.
fn timing_simulations_counter() -> &'static mom_obs::Counter {
    static COUNTER: std::sync::OnceLock<mom_obs::Counter> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| {
        mom_obs::counter(
            "momsim_timing_simulations_total",
            "Out-of-order timing simulators constructed (one per simulated interval).",
        )
    })
}

/// The number of timing simulations constructed by this process so far.
pub fn timing_simulations() -> u64 {
    timing_simulations_counter().get()
}

/// Number of distinct register ids (see `mom_isa::Reg::id`).
const REG_ID_SPACE: usize = 256;

/// One instruction in flight (a reorder-buffer entry), or renamed and
/// waiting to be dispatched.
#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    /// Dynamic sequence number (index in the stream).
    seq: u64,
    /// Functional-unit class.
    fu: FuClass,
    /// Cycles of functional-unit occupancy: ceil(VL / lanes) for matrix
    /// compute instructions, ceil(bytes moved / port bytes-per-cycle) for
    /// vector memory accesses, 1 otherwise (see [`PipelineSim::occupancy`]).
    occupancy: u64,
    /// Execution latency (result available `latency + occupancy - 1` cycles
    /// after issue).
    latency: u64,
    /// Elementary operations performed (for the OPI statistics).
    ops: u64,
    /// Whether this is a multimedia instruction.
    is_media: bool,
    /// Whether this instruction accesses memory.
    is_memory: bool,
    /// Whether this instruction writes memory.
    is_store: bool,
    /// Conservative byte interval `[start, end)` the access covers, when the
    /// trace carries address metadata.
    mem_span: Option<(u64, u64)>,
    /// Head of this entry's wakeup list in the edge arena ([`EDGE_NONE`]
    /// when empty): the consumers to notify when this entry issues.
    consumer_head: u32,
    /// Producers of this entry's sources that have not issued yet (each one
    /// holds a wakeup edge back to this entry).
    unresolved_deps: u8,
    /// The latest completion cycle over the producers that *have* issued;
    /// once `unresolved_deps` reaches zero this is the cycle the operands
    /// are ready.
    operand_ready_cycle: u64,
    /// Whether the instruction has been issued.
    issued: bool,
    /// Cycle at which the result is available (valid once issued).
    complete_cycle: u64,
}

/// Sentinel for "no edge" in the wakeup arena.
const EDGE_NONE: u32 = u32::MAX;

/// One wakeup edge: a node of a producer's intrusive consumer list, living
/// in the [`PipelineSim::edges`] arena.  Nodes are recycled through a free
/// list, so steady-state renaming never allocates.
#[derive(Debug, Clone, Copy)]
struct EdgeNode {
    /// Sequence number of the consumer to wake.
    consumer: u64,
    /// Next edge of the same producer (or the next free node), or
    /// [`EDGE_NONE`].
    next: u32,
}

/// One in-flight store in the store-address queue: enough to decide whether
/// a younger load may issue past it.
#[derive(Debug, Clone, Copy)]
struct StoreRecord {
    /// Sequence number of the store (the queue is in sequence order).
    seq: u64,
    /// Conservative byte span of the store, when its address is known.
    span: Option<(u64, u64)>,
    /// Completion cycle once issued; `u64::MAX` while unissued.  The store
    /// stops blocking loads once `complete_cycle <= cycle`.
    complete_cycle: u64,
}

/// A trace entry decoded once per stream position: renaming (producer
/// sequence numbers) and instruction metadata do not depend on the machine
/// configuration, so a fan-out over many configurations computes them a
/// single time ([`Renamer::decode`]) and feeds the decoded form to every
/// consumer ([`PipelineSim::feed_decoded`]).
#[derive(Debug, Clone, Copy)]
struct DecodedEntry {
    /// Sequence numbers of the producers of each source register (with
    /// duplicates when two sources share a producer).
    deps: [u64; 4],
    /// Number of valid entries in `deps`.
    dep_count: u8,
    /// Functional-unit class.
    fu: FuClass,
    /// Elementary operations performed.
    ops: u64,
    /// Effective vector length at execution time.
    vl: u16,
    /// Whether occupancy scales with the vector length.
    is_vl_dependent: bool,
    /// Whether this is a multimedia instruction.
    is_media: bool,
    /// Whether this instruction accesses memory.
    is_memory: bool,
    /// Whether this instruction writes memory.
    is_store: bool,
    /// The traced memory access, when the trace carries address metadata.
    mem: Option<mom_arch::MemAccess>,
    /// Conservative byte span of the access.
    mem_span: Option<(u64, u64)>,
}

/// Flag bit in [`DecodedBatch::flags`]: occupancy scales with the vector
/// length.
const DECODED_VL_DEPENDENT: u8 = 1 << 0;
/// Flag bit in [`DecodedBatch::flags`]: multimedia instruction.
const DECODED_MEDIA: u8 = 1 << 1;
/// Flag bit in [`DecodedBatch::flags`]: memory instruction.
const DECODED_MEMORY: u8 = 1 << 2;
/// Flag bit in [`DecodedBatch::flags`]: store instruction.
const DECODED_STORE: u8 = 1 << 3;

/// A shared arena of decoded entries in structure-of-arrays layout: the
/// lockstep batch of [`PipelineFanout`].
///
/// The fan-out's consumers advance over one decoded stream; everything
/// configuration-independent about a stream position — the dependence
/// edges (producer sequence numbers), operand metadata and the traced
/// memory access — is stored **once** here, as parallel columns, while the
/// per-configuration state (window entries, wakeup lists, queues) lives in
/// each consumer.  Sweeping a whole batch through one consumer at a time
/// means each decoded column is streamed sequentially and touched once per
/// batch instead of once per simulator, and the consumer's own state stays
/// hot in cache for the length of the sweep.
#[derive(Debug, Clone, Default)]
struct DecodedBatch {
    /// Producer sequence numbers of each entry's sources.
    deps: Vec<[u64; 4]>,
    /// Number of valid entries in the `deps` row.
    dep_count: Vec<u8>,
    /// Functional-unit class.
    fu: Vec<FuClass>,
    /// Elementary operations performed.
    ops: Vec<u64>,
    /// Effective vector length at execution time.
    vl: Vec<u16>,
    /// `DECODED_*` flag bits.
    flags: Vec<u8>,
    /// The traced memory access, when the trace carries address metadata.
    mem: Vec<Option<mom_arch::MemAccess>>,
    /// Conservative byte span of the access.
    mem_span: Vec<Option<(u64, u64)>>,
}

impl DecodedBatch {
    fn with_capacity(capacity: usize) -> Self {
        DecodedBatch {
            deps: Vec::with_capacity(capacity),
            dep_count: Vec::with_capacity(capacity),
            fu: Vec::with_capacity(capacity),
            ops: Vec::with_capacity(capacity),
            vl: Vec::with_capacity(capacity),
            flags: Vec::with_capacity(capacity),
            mem: Vec::with_capacity(capacity),
            mem_span: Vec::with_capacity(capacity),
        }
    }

    fn len(&self) -> usize {
        self.flags.len()
    }

    fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    fn clear(&mut self) {
        self.deps.clear();
        self.dep_count.clear();
        self.fu.clear();
        self.ops.clear();
        self.vl.clear();
        self.flags.clear();
        self.mem.clear();
        self.mem_span.clear();
    }

    fn push(&mut self, d: &DecodedEntry) {
        self.deps.push(d.deps);
        self.dep_count.push(d.dep_count);
        self.fu.push(d.fu);
        self.ops.push(d.ops);
        self.vl.push(d.vl);
        let mut flags = 0u8;
        if d.is_vl_dependent {
            flags |= DECODED_VL_DEPENDENT;
        }
        if d.is_media {
            flags |= DECODED_MEDIA;
        }
        if d.is_memory {
            flags |= DECODED_MEMORY;
        }
        if d.is_store {
            flags |= DECODED_STORE;
        }
        self.flags.push(flags);
        self.mem.push(d.mem);
        self.mem_span.push(d.mem_span);
    }

    /// Reassembles the decoded entry at `index` from the columns (a handful
    /// of register-width reads; the columns themselves stay shared).
    fn get(&self, index: usize) -> DecodedEntry {
        let flags = self.flags[index];
        DecodedEntry {
            deps: self.deps[index],
            dep_count: self.dep_count[index],
            fu: self.fu[index],
            ops: self.ops[index],
            vl: self.vl[index],
            is_vl_dependent: flags & DECODED_VL_DEPENDENT != 0,
            is_media: flags & DECODED_MEDIA != 0,
            is_memory: flags & DECODED_MEMORY != 0,
            is_store: flags & DECODED_STORE != 0,
            mem: self.mem[index],
            mem_span: self.mem_span[index],
        }
    }
}

/// The rename stage, separated from the per-configuration consumers: a
/// last-writer scoreboard over the architectural registers plus the running
/// sequence counter.  One renamer can serve a whole fan-out, because the
/// producer of every source depends only on stream order.
#[derive(Debug, Clone)]
struct Renamer {
    /// Last writer (sequence number) of each architectural register.
    last_writer: [Option<u64>; REG_ID_SPACE],
    /// Sequence number assigned to the next decoded entry.
    next_seq: u64,
}

impl Renamer {
    fn new() -> Self {
        Renamer {
            last_writer: [None; REG_ID_SPACE],
            next_seq: 0,
        }
    }

    /// Renames one trace entry and extracts the configuration-independent
    /// metadata the timing consumers need.
    fn decode(&mut self, entry: &TraceEntry) -> DecodedEntry {
        let seq = self.next_seq;
        self.next_seq += 1;
        let instr = &entry.instr;
        let mut deps = [0u64; 4];
        let mut dep_count = 0u8;
        for reg in instr.sources().iter() {
            if reg.is_zero() {
                continue;
            }
            if let Some(w) = self.last_writer[reg.id()] {
                // An instruction has at most four register sources
                // (`RegList` enforces it), so the dependence list cannot
                // overflow; guard anyway so a future wider instruction
                // degrades to a dropped dependence instead of a panic.
                debug_assert!(
                    (dep_count as usize) < deps.len(),
                    "more producers than dependence slots for {instr:?}"
                );
                if (dep_count as usize) < deps.len() {
                    deps[dep_count as usize] = w;
                    dep_count += 1;
                }
            }
        }
        for reg in instr.dests().iter() {
            if !reg.is_zero() {
                self.last_writer[reg.id()] = Some(seq);
            }
        }
        DecodedEntry {
            deps,
            dep_count,
            fu: instr.fu_class(),
            ops: entry.ops(),
            vl: entry.vl,
            is_vl_dependent: instr.is_vl_dependent(),
            is_media: instr.is_media(),
            is_memory: instr.is_memory(),
            is_store: instr.is_store(),
            mem: entry.mem,
            mem_span: entry.mem.map(|m| m.span()),
        }
    }
}

/// Number of slots in the functional-unit free-event calendar.  Busy spans
/// shorter than this (all realistic occupancies and latencies) schedule
/// their free event in the ring; longer ones overflow to a heap.
const CALENDAR_SLOTS: u64 = 64;

/// Scan-free functional-unit availability tracking.
///
/// Free units of one class are interchangeable (their stale busy times are
/// all in the past, so any of them can take the next instruction without
/// changing future behaviour), which reduces the per-class busy table to a
/// *count* of free units plus a schedule of future free events: a calendar
/// ring for events up to [`CALENDAR_SLOTS`] cycles out — one counter
/// increment per issue, one row drain per cycle — and an overflow heap for
/// the rare longer spans.
#[derive(Debug, Clone)]
struct FuTracker {
    /// Free units per class, current as of `drained_cycle`.
    free: [u32; FuClass::COUNT],
    /// `calendar[t % CALENDAR_SLOTS][class]`: units of `class` becoming
    /// free at cycle `t`, for `t` within `CALENDAR_SLOTS` of the present.
    calendar: [[u32; FuClass::COUNT]; CALENDAR_SLOTS as usize],
    /// Free events scheduled `CALENDAR_SLOTS` or more cycles out:
    /// `(free_cycle, class)`.
    overflow: BinaryHeap<Reverse<(u64, u8)>>,
    /// The cycle up to (and including) which events have been folded into
    /// `free`.
    drained_cycle: u64,
}

impl FuTracker {
    fn new(config: &PipelineConfig) -> FuTracker {
        let mut free = [0u32; FuClass::COUNT];
        for class in FuClass::ALL {
            free[class.index()] = config.pool(class).count as u32;
        }
        FuTracker {
            free,
            calendar: [[0; FuClass::COUNT]; CALENDAR_SLOTS as usize],
            overflow: BinaryHeap::new(),
            drained_cycle: 0,
        }
    }

    /// Folds every free event scheduled at cycles in
    /// `(drained_cycle, cycle]` into the free counts.  Cheap in the common
    /// case (one ring row per cycle); bounded by the ring size after a
    /// clock jump.
    fn drain_to(&mut self, cycle: u64) {
        if cycle <= self.drained_cycle {
            return;
        }
        let from = if cycle - self.drained_cycle >= CALENDAR_SLOTS {
            cycle - CALENDAR_SLOTS + 1
        } else {
            self.drained_cycle + 1
        };
        for t in from..=cycle {
            let row = &mut self.calendar[(t % CALENDAR_SLOTS) as usize];
            for (free, slot) in self.free.iter_mut().zip(row.iter_mut()) {
                *free += *slot;
                *slot = 0;
            }
        }
        while let Some(&Reverse((t, class))) = self.overflow.peek() {
            if t > cycle {
                break;
            }
            self.overflow.pop();
            self.free[class as usize] += 1;
        }
        self.drained_cycle = cycle;
    }

    /// Whether a unit of the class is free (after [`FuTracker::drain_to`]
    /// for the current cycle).
    fn has_free(&self, class: usize) -> bool {
        self.free[class] > 0
    }

    /// Takes a free unit of the class and schedules its free event
    /// `busy_for` cycles out.
    fn take(&mut self, class: usize, cycle: u64, busy_for: u64) {
        self.free[class] -= 1;
        if busy_for < CALENDAR_SLOTS {
            self.calendar[((cycle + busy_for) % CALENDAR_SLOTS) as usize][class] += 1;
        } else {
            self.overflow.push(Reverse((cycle + busy_for, class as u8)));
        }
    }

    /// The earliest cycle after `cycle` at which any class gains a free
    /// unit, if any event is scheduled (used by the idle fast-forward).
    /// An overflow event scheduled long ago may by now be nearer than the
    /// first calendar event, so both sources are compared.
    fn next_free_event(&self, cycle: u64) -> Option<u64> {
        let ring = (1..CALENDAR_SLOTS).map(|ahead| cycle + ahead).find(|t| {
            self.calendar[(t % CALENDAR_SLOTS) as usize]
                .iter()
                .any(|&n| n > 0)
        });
        let overflow = self.overflow.peek().map(|&Reverse((t, _))| t);
        match (ring, overflow) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// The incremental out-of-order timing consumer.
///
/// Feed it retired instructions ([`PipelineSim::feed`]) as they stream out
/// of the functional simulator, then call [`PipelineSim::finish`] for the
/// [`SimResult`].  It also implements [`TraceSink`], so it can be attached
/// directly to `Machine::run_with_sink` — fusing functional and timing
/// simulation into a single bounded-memory pass.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    config: PipelineConfig,
    /// The simulated data-cache hierarchy, when the memory model is
    /// [`crate::MemoryModel::Hierarchy`].  Accessed in trace order at rename
    /// time, which keeps streaming and batch replay bit-identical.
    dcache: Option<CacheSim>,
    /// Every in-flight instruction, in order: the reorder buffer
    /// (`committed..next_dispatch`) followed by the renamed-but-undispatched
    /// fetch buffer (`next_dispatch..next_seq`).  The entry of sequence
    /// number `s` lives at index `s - committed`; dispatch just advances
    /// `next_dispatch` instead of copying entries between queues.  The
    /// fetch-buffer tail is bounded: [`PipelineSim::feed`] drains it down
    /// to below one fetch group.
    insts: VecDeque<WindowEntry>,
    /// Per-class functional-unit availability (free counts plus a calendar
    /// of future free events), indexed by [`FuClass::index`].
    fu: FuTracker,
    /// Bit `FuClass::index` set when that pool is pipelined — the only pool
    /// property the issue stage needs per instruction.
    fu_pipelined: u16,
    /// Per-class busy-cycle totals, materialised into
    /// [`SimResult::fu_busy_cycles`] at the end of the run.
    fu_busy_acc: [u64; FuClass::COUNT],
    /// The rename stage (last-writer scoreboard).  Unused when the sim is
    /// driven through a fan-out, whose shared renamer decodes each entry
    /// once for every consumer.
    renamer: Renamer,
    /// The wakeup-edge arena: intrusive per-producer consumer lists headed
    /// by [`WindowEntry::consumer_head`], with freed nodes threaded onto
    /// [`PipelineSim::edge_free`] for reuse.
    edges: Vec<EdgeNode>,
    /// Head of the arena's free list ([`EDGE_NONE`] when empty).
    edge_free: u32,
    /// Dispatched, unissued entries whose operands are ready this cycle or
    /// the next, in sequence (= age) order: the only entries the issue
    /// stage visits (not-quite-ready ones are skipped by their
    /// operand-ready cycle and revisited next cycle).
    ready: Vec<u64>,
    /// How many `ready` entries wait per functional-unit class: lets the
    /// issue pass stop as soon as every class with waiting entries has been
    /// found busy this cycle, instead of probing the whole backlog (60
    /// ready loads behind 2 busy ports cost O(1) per stalled cycle, not
    /// O(60)).
    ready_counts: [u32; FuClass::COUNT],
    /// Dispatched entries whose operands will be ready at a known cycle
    /// further out, keyed by that cycle; drained into `ready` as time
    /// advances.  Splitting near-ready entries (straight into `ready`) from
    /// far-future ones (heap) keeps 1-cycle dependence chains off the heap
    /// while long memory latencies never cause rescans.
    future: BinaryHeap<Reverse<(u64, u64)>>,
    /// The in-flight stores, in sequence order: the only entries a load's
    /// memory-ordering check inspects.
    store_queue: VecDeque<StoreRecord>,
    /// Lower bound on the earliest completion among issued, in-flight
    /// instructions — shrunk on every issue, recomputed (by scanning the
    /// window) only when the recorded event has passed.  Keeps the idle
    /// fast-forward O(1) amortised instead of O(window) per idle cycle.
    next_completion: u64,
    /// Lower bound on the earliest future functional-unit free event, with
    /// the same lazy-recompute discipline.
    next_fu_free: u64,
    /// Sequence number assigned to the next fed entry.
    next_seq: u64,
    /// Sequence number of the next entry to dispatch (= dispatched count).
    next_dispatch: u64,
    /// Committed instruction count (= sequence number of the oldest
    /// in-flight entry).
    committed: u64,
    /// Current cycle.
    cycle: u64,
    /// Statistics accumulated at commit.
    result: SimResult,
}

impl PipelineSim {
    /// Creates an incremental consumer for the given machine configuration,
    /// with every table pre-sized from the configuration (window, pending
    /// buffer, ready/wakeup structures and the store queue from the
    /// reorder-buffer size, the free-unit heaps from the pool counts), so a
    /// fan-out over a whole configuration grid allocates once up front.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: PipelineConfig) -> Self {
        let dcache = config.memory.hierarchy().copied().map(CacheSim::new);
        Self::build(config, dcache)
    }

    /// The shared constructor body: every table pre-sized from the
    /// configuration, with the data cache supplied by the caller
    /// ([`PipelineSim::new`] builds a cold one from the configuration;
    /// [`PipelineSim::resume`] installs a warm one without constructing a
    /// throwaway hierarchy first).
    fn build(config: PipelineConfig, dcache: Option<CacheSim>) -> Self {
        config.validate().expect("invalid pipeline configuration");
        timing_simulations_counter().inc();
        let fu = FuTracker::new(&config);
        let mut fu_pipelined = 0u16;
        for class in FuClass::ALL {
            if config.pool(class).pipelined {
                fu_pipelined |= 1 << class.index();
            }
        }
        let rob = config.rob_size;
        PipelineSim {
            dcache,
            insts: VecDeque::with_capacity(rob + config.width),
            fu,
            fu_pipelined,
            fu_busy_acc: [0; FuClass::COUNT],
            renamer: Renamer::new(),
            edges: Vec::with_capacity(2 * rob),
            edge_free: EDGE_NONE,
            ready: Vec::with_capacity(rob),
            ready_counts: [0; FuClass::COUNT],
            future: BinaryHeap::with_capacity(rob),
            store_queue: VecDeque::with_capacity(rob),
            next_completion: u64::MAX,
            next_fu_free: u64::MAX,
            next_seq: 0,
            next_dispatch: 0,
            committed: 0,
            cycle: 0,
            result: SimResult::default(),
            config,
        }
    }

    /// Creates an incremental consumer that **resumes** on a warm data
    /// cache: the tag state of `dcache` (typically obtained from a previous
    /// phase's [`PipelineSim::into_parts`]) is kept, its hit/miss counters
    /// are zeroed, and everything else — window, renaming, cycle count —
    /// starts fresh.
    ///
    /// This is the phase boundary of a multi-kernel application pipeline:
    /// the pipeline drains between phases (a function-call boundary), but
    /// the memory hierarchy does not forget, so a phase re-reading a
    /// predecessor's buffers observes warm-cache hits.  Under a
    /// [`crate::MemoryModel::Fixed`] configuration the warm cache is
    /// ignored, so phase chaining cannot perturb fixed-latency timing.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.  In debug builds,
    /// additionally asserts that a provided warm cache has the same
    /// geometry the configuration's hierarchy describes.
    pub fn resume(config: PipelineConfig, dcache: Option<CacheSim>) -> Self {
        let dcache = match (config.memory.hierarchy().copied(), dcache) {
            (Some(geometry), Some(mut warm)) => {
                debug_assert_eq!(
                    warm.config(),
                    geometry,
                    "resumed cache geometry must match the configuration"
                );
                warm.reset_stats();
                Some(warm)
            }
            (Some(geometry), None) => Some(CacheSim::new(geometry)),
            (None, _) => None,
        };
        Self::build(config, dcache)
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Occupancy (in cycles) of one dynamic instruction on its functional
    /// unit.
    ///
    /// The vector memory port moves `vec_mem_words` 64-bit words per cycle,
    /// so a matrix access occupies it for the bytes it actually moves (from
    /// the traced access size), not a flat per-row count.  The non-pipelined
    /// transpose unit has occupancy 1 — serialisation comes from the unit
    /// staying busy for the full latency (`busy_for = latency.max(occupancy)`
    /// at issue), not from inflating the occupancy, which would double-count
    /// the latency in the completion time.
    fn occupancy(&self, decoded: &DecodedEntry) -> u64 {
        let vl = decoded.vl.max(1) as u64;
        match decoded.fu {
            FuClass::VecMem => {
                let port_bytes = self.config.vec_mem_words as u64 * 8;
                let bytes = decoded.mem.map_or(vl * 8, |m| m.total_bytes());
                bytes.div_ceil(port_bytes).max(1)
            }
            _ if decoded.is_vl_dependent => vl.div_ceil(self.config.media_lanes as u64),
            _ => 1,
        }
    }

    /// Number of dispatched entries (the reorder-buffer occupancy).
    fn window_len(&self) -> usize {
        (self.next_dispatch - self.committed) as usize
    }

    /// Number of renamed entries not yet dispatched.
    fn pending_len(&self) -> usize {
        (self.next_seq - self.next_dispatch) as usize
    }

    /// Consumes the next retired instruction of the stream.
    ///
    /// Renaming happens immediately (it only depends on stream order); the
    /// cycle-by-cycle simulation advances as soon as a full fetch group is
    /// buffered, so the consumer holds at most `width - 1` undispatched
    /// instructions plus the reorder buffer — bounded memory regardless of
    /// stream length.
    pub fn feed(&mut self, entry: TraceEntry) {
        let decoded = self.renamer.decode(&entry);
        self.feed_decoded(&decoded);
    }

    /// Consumes one already-renamed entry (see [`Renamer::decode`]): the
    /// per-configuration half of [`PipelineSim::feed`], shared by the
    /// fan-out so decoding happens once per entry instead of once per
    /// consumer.
    fn feed_decoded(&mut self, decoded: &DecodedEntry) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // Resolve the decoded dependences against this consumer's state: a
        // committed producer is complete; an issued one contributes its
        // known completion cycle; an unissued one gets a wakeup edge back
        // to this entry and is counted in `unresolved_deps`.
        let mut unresolved_deps = 0u8;
        let mut operand_ready_cycle = 0u64;
        for &w in &decoded.deps[..decoded.dep_count as usize] {
            if w < self.committed {
                continue;
            }
            let producer = &mut self.insts[(w - self.committed) as usize];
            if producer.issued {
                operand_ready_cycle = operand_ready_cycle.max(producer.complete_cycle);
            } else {
                unresolved_deps += 1;
                // Thread a wakeup edge onto the producer's list, recycling
                // a freed arena node when one is available.
                let next = producer.consumer_head;
                let node = EdgeNode {
                    consumer: seq,
                    next,
                };
                if self.edge_free != EDGE_NONE {
                    let slot = self.edge_free;
                    producer.consumer_head = slot;
                    self.edge_free = self.edges[slot as usize].next;
                    self.edges[slot as usize] = node;
                } else {
                    producer.consumer_head = self.edges.len() as u32;
                    self.edges.push(node);
                }
            }
        }
        // Memory instructions are charged by the memory model: the fixed
        // latency, or the simulated per-access hit/miss latency when the
        // model is a hierarchy and the trace carries addresses (entries
        // without metadata are assumed to hit L1).
        let latency = match (decoded.fu, &mut self.dcache) {
            (FuClass::Mem | FuClass::VecMem, Some(cache)) => match decoded.mem.as_ref() {
                Some(access) => cache.access(access),
                None => cache.hit_latency(),
            },
            _ => self.config.latency(decoded.fu),
        };
        self.insts.push_back(WindowEntry {
            seq,
            fu: decoded.fu,
            occupancy: self.occupancy(decoded),
            latency,
            ops: decoded.ops,
            is_media: decoded.is_media,
            is_memory: decoded.is_memory,
            is_store: decoded.is_store,
            mem_span: decoded.mem_span,
            consumer_head: EDGE_NONE,
            unresolved_deps,
            operand_ready_cycle,
            issued: false,
            complete_cycle: u64::MAX,
        });
        // A cycle's dispatch group is fully determined once `width` renamed
        // instructions are buffered (dispatch consumes at most `width` per
        // cycle), so simulating now is indistinguishable from batch replay.
        while self.pending_len() >= self.config.width {
            self.step_cycle();
        }
    }

    /// Replays one shared decoded batch through this consumer: the
    /// per-configuration half of the fan-out's lockstep sweep (see
    /// [`DecodedBatch`]).
    fn feed_batch(&mut self, batch: &DecodedBatch) {
        for index in 0..batch.len() {
            self.feed_decoded(&batch.get(index));
        }
    }

    /// The measurement probe of the sampling driver ([`crate::sample`]):
    /// the cycle count the engine would report if the stream ended at the
    /// entries fed so far.  Clones the consumer — minus the cache
    /// hierarchy, which draining never consults, since memory latencies
    /// were charged at rename time — and runs the clone to completion; the
    /// consumer itself is untouched, so the difference between two probes
    /// measures the cycles attributable to the instructions fed between
    /// them.
    pub(crate) fn drained_cycle_count(&mut self) -> u64 {
        let cache = self.dcache.take();
        let mut probe = self.clone();
        self.dcache = cache;
        while probe.committed < probe.next_seq {
            probe.step_cycle();
        }
        probe.cycle
    }

    /// Runs the simulation to completion and returns the result.
    pub fn finish(self) -> SimResult {
        self.into_parts().0
    }

    /// Runs the simulation to completion and returns the result **plus** the
    /// simulated data cache in its final (warm) state, so a follow-up phase
    /// can [`PipelineSim::resume`] on it.  The cache is `None` under a
    /// fixed-latency memory model.
    pub fn into_parts(mut self) -> (SimResult, Option<CacheSim>) {
        while self.committed < self.next_seq {
            self.step_cycle();
        }
        self.result.cycles = self.cycle;
        for (index, &busy) in self.fu_busy_acc.iter().enumerate() {
            if busy > 0 {
                self.result.fu_busy_cycles.insert(FuClass::ALL[index], busy);
            }
        }
        if let Some(cache) = &self.dcache {
            self.result.cache = cache.stats;
        }
        (self.result, self.dcache)
    }

    /// Inserts a sequence number into the ready queue, keeping age order.
    fn make_ready(ready: &mut Vec<u64>, seq: u64) {
        let at = ready.partition_point(|&s| s < seq);
        ready.insert(at, seq);
    }

    /// Simulates one cycle: commit, issue, dispatch — the same stage order
    /// as the paper's trace-driven Jinks runs.
    fn step_cycle(&mut self) {
        let cfg = &self.config;

        // ----------------------------------------------------------
        // Commit: in order, up to `width` completed instructions.
        // ----------------------------------------------------------
        let mut committed_this_cycle = 0;
        while committed_this_cycle < cfg.width && self.committed < self.next_dispatch {
            match self.insts.front() {
                Some(e) if e.issued && e.complete_cycle <= self.cycle => {
                    self.result.instructions += 1;
                    self.result.operations += e.ops;
                    if e.is_media {
                        self.result.media_instructions += 1;
                    }
                    if e.is_memory {
                        self.result.memory_instructions += 1;
                    }
                    debug_assert_eq!(
                        e.consumer_head, EDGE_NONE,
                        "an issued producer must have drained its wakeup list"
                    );
                    self.insts.pop_front();
                    self.committed += 1;
                    committed_this_cycle += 1;
                }
                _ => break,
            }
        }

        // ----------------------------------------------------------
        // Issue: oldest-first, up to `width` ready instructions whose
        // functional unit is free.
        // ----------------------------------------------------------
        // Fold functional-unit free events up to this cycle into the free
        // counts.
        self.fu.drain_to(self.cycle);
        // Wake the entries whose operands become ready this cycle.
        while let Some(&Reverse((ready_cycle, seq))) = self.future.peek() {
            if ready_cycle > self.cycle {
                break;
            }
            self.future.pop();
            self.ready_counts[self.insts[(seq - self.committed) as usize].fu.index()] += 1;
            Self::make_ready(&mut self.ready, seq);
        }
        // Retire completed stores from the head of the store queue (they no
        // longer block anything; completion is monotone in the cycle).
        while self
            .store_queue
            .front()
            .is_some_and(|s| s.complete_cycle <= self.cycle)
        {
            self.store_queue.pop_front();
        }
        // Visit the ready entries oldest-first, compacting the queue in
        // place: issued entries are dropped, blocked ones slide down.  The
        // region `write..read` is the gap; everything at `read..` is still
        // sorted and unvisited.
        let mut issued_this_cycle = 0;
        let mut read = 0;
        let mut write = 0;
        // Earliest operand-ready cycle among visited not-yet-ready entries
        // (an input to the idle fast-forward below).
        let mut min_unready_cycle = u64::MAX;
        // Classes found to have no free unit this cycle; once every class
        // with ready entries is busy, nothing further can issue.
        let mut busy_classes: u16 = 0;
        while read < self.ready.len() && issued_this_cycle < cfg.width {
            let seq = self.ready[read];
            let index = (seq - self.committed) as usize;
            // One read of the candidate entry serves every check below.
            let e = &self.insts[index];
            // Near-ready entries (operands available next cycle) ride in
            // the ready queue instead of the heap; skip them until their
            // cycle arrives.
            let operand_ready_cycle = e.operand_ready_cycle;
            if operand_ready_cycle > self.cycle {
                min_unready_cycle = min_unready_cycle.min(operand_ready_cycle);
                self.ready[write] = seq;
                write += 1;
                read += 1;
                continue;
            }
            // Memory ordering: a load may not issue past an older store that
            // has not yet written memory, unless both addresses are known
            // and the byte ranges are disjoint.  There is no store-to-load
            // forwarding, so "written" means completed.  Only the in-flight
            // stores of the store-address queue need checking; committed
            // stores are done, and the queue is in age order.
            if e.is_memory && !e.is_store {
                let load_span = e.mem_span;
                let mut blocked = false;
                for store in &self.store_queue {
                    if store.seq >= seq {
                        break;
                    }
                    if store.complete_cycle <= self.cycle {
                        continue;
                    }
                    let disjoint = matches!(
                        (load_span, store.span),
                        (Some(a), Some(b)) if !mom_arch::spans_overlap(a, b)
                    );
                    if !disjoint {
                        blocked = true;
                        break;
                    }
                }
                if blocked {
                    self.ready[write] = seq;
                    write += 1;
                    read += 1;
                    continue;
                }
            }
            // Structural hazard: the root of the class's free-time heap
            // tells whether any unit is free.  A class found busy once is
            // busy for the rest of the cycle; when every class with waiting
            // entries is busy, stop probing the backlog altogether.
            let fu = e.fu;
            let class = fu.index();
            if busy_classes & (1 << class) != 0 {
                self.ready[write] = seq;
                write += 1;
                read += 1;
                continue;
            }
            if !self.fu.has_free(class) {
                busy_classes |= 1 << class;
                self.ready[write] = seq;
                write += 1;
                read += 1;
                if self
                    .ready_counts
                    .iter()
                    .enumerate()
                    .all(|(c, &n)| n == 0 || busy_classes & (1 << c) != 0)
                {
                    // The unvisited tail may hold entries whose operands
                    // arrive next cycle; make sure the idle fast-forward
                    // does not jump past them.
                    if read < self.ready.len() {
                        min_unready_cycle = min_unready_cycle.min(self.cycle + 1);
                    }
                    break;
                }
                continue;
            }
            // Issue.
            self.ready_counts[class] -= 1;
            let occupancy = e.occupancy;
            let latency = e.latency;
            let is_store = e.is_store;
            let busy_for = if self.fu_pipelined & (1 << class) != 0 {
                occupancy
            } else {
                latency.max(occupancy)
            };
            self.fu.take(class, self.cycle, busy_for);
            self.next_fu_free = self.next_fu_free.min(self.cycle + busy_for);
            self.fu_busy_acc[class] += busy_for;
            let complete_cycle = self.cycle + latency + occupancy - 1;
            self.next_completion = self.next_completion.min(complete_cycle);
            let edge_head = {
                let e = &mut self.insts[index];
                e.issued = true;
                e.complete_cycle = complete_cycle;
                std::mem::replace(&mut e.consumer_head, EDGE_NONE)
            };
            if is_store {
                let at = self.store_queue.partition_point(|s| s.seq < seq);
                debug_assert_eq!(self.store_queue[at].seq, seq, "store must be queued");
                self.store_queue[at].complete_cycle = complete_cycle;
            }
            // Wake this producer's consumers (walking its intrusive edge
            // list and recycling the nodes).  A consumer whose last
            // producer just issued becomes ready at `complete_cycle`; if
            // that is near (this cycle or the next) it joins the sorted,
            // unvisited tail of the ready queue — exactly where an
            // age-ordered window scan would visit it, since consumers are
            // always younger than their producer — and only far-future
            // completions pay for the heap.
            let mut edge = edge_head;
            while edge != EDGE_NONE {
                let EdgeNode { consumer, next } = self.edges[edge as usize];
                self.edges[edge as usize].next = self.edge_free;
                self.edge_free = edge;
                edge = next;
                let dispatched = consumer < self.next_dispatch;
                let c = &mut self.insts[(consumer - self.committed) as usize];
                c.unresolved_deps -= 1;
                c.operand_ready_cycle = c.operand_ready_cycle.max(complete_cycle);
                if c.unresolved_deps == 0 && dispatched {
                    let ready_cycle = c.operand_ready_cycle;
                    let consumer_class = c.fu.index();
                    if ready_cycle <= self.cycle + 1 {
                        // Insert into the sorted, unvisited tail `read+1..`
                        // (the compaction gap stays intact: the insertion
                        // point is past the read cursor).
                        self.ready_counts[consumer_class] += 1;
                        let tail = read + 1;
                        let at = tail + self.ready[tail..].partition_point(|&s| s < consumer);
                        self.ready.insert(at, consumer);
                    } else {
                        self.future.push(Reverse((ready_cycle, consumer)));
                    }
                }
            }
            // The issued entry is dropped from the ready queue: advance the
            // read cursor without copying it into the kept region.
            read += 1;
            issued_this_cycle += 1;
        }
        // Slide any unvisited tail (width cap reached) down over the gap
        // and drop the issued entries.
        if write != read {
            while read < self.ready.len() {
                self.ready[write] = self.ready[read];
                write += 1;
                read += 1;
            }
            self.ready.truncate(write);
        }

        // ----------------------------------------------------------
        // Dispatch: in order, up to `width` renamed instructions into
        // the reorder buffer.
        // ----------------------------------------------------------
        let mut dispatched_this_cycle = 0;
        let mut stalled = false;
        while dispatched_this_cycle < cfg.width && self.next_dispatch < self.next_seq {
            if self.window_len() >= cfg.rob_size {
                stalled = true;
                break;
            }
            // Dispatch is just the boundary marker moving over the next
            // renamed entry — no copy.
            let e = &self.insts[(self.next_dispatch - self.committed) as usize];
            if e.is_store {
                self.store_queue.push_back(StoreRecord {
                    seq: e.seq,
                    span: e.mem_span,
                    complete_cycle: u64::MAX,
                });
            }
            // An entry with no outstanding producers is schedulable as soon
            // as its operand-ready cycle passes; one with outstanding
            // producers enters the ready structures when the last of them
            // issues (the wakeup edges above).  Dispatch happens after this
            // cycle's issue stage, so next cycle is the earliest it can
            // issue either way: already-ready entries append straight to
            // the ready queue (they are the youngest, so order is kept) and
            // only genuinely future ones pay for the heap.
            if e.unresolved_deps == 0 {
                if e.operand_ready_cycle <= self.cycle + 1 {
                    self.ready_counts[e.fu.index()] += 1;
                    self.ready.push(e.seq);
                } else {
                    self.future.push(Reverse((e.operand_ready_cycle, e.seq)));
                }
            }
            self.next_dispatch += 1;
            dispatched_this_cycle += 1;
        }
        if stalled {
            self.result.dispatch_stall_cycles += 1;
        }
        self.result.max_rob_occupancy = self.result.max_rob_occupancy.max(self.window_len());

        // ----------------------------------------------------------
        // Idle fast-forward: if this cycle did nothing at all, the machine
        // state is static until the next event — the earliest in-flight
        // completion (which also unblocks commits and store-blocked loads),
        // the earliest operand-ready cycle (future heap and the near-ready
        // entries counted above), or the earliest functional-unit free time
        // (which only matters while something is waiting in the ready
        // queue).  Jump the clock there instead of ticking through cycles
        // whose every `<= cycle` comparison is known to fail.  Skipped
        // cycles repeat this cycle's dispatch-stall state exactly.
        // ----------------------------------------------------------
        if committed_this_cycle == 0 && issued_this_cycle == 0 && dispatched_this_cycle == 0 {
            let mut next_event = min_unready_cycle;
            // Earliest completion among the issued, in-flight instructions:
            // the watermark is exact or a safe lower bound while it lies in
            // the future; once it has passed, rescan the window for the
            // true next event (at most once per passed event, so idle
            // cycles stay O(1) amortised and busy streams never scan).
            if self.next_completion <= self.cycle {
                let mut earliest = u64::MAX;
                for e in self.insts.iter().take(self.window_len()) {
                    if e.issued && e.complete_cycle > self.cycle {
                        earliest = earliest.min(e.complete_cycle);
                    }
                }
                self.next_completion = earliest;
            }
            next_event = next_event.min(self.next_completion);
            if let Some(&Reverse((ready_cycle, _))) = self.future.peek() {
                next_event = next_event.min(ready_cycle);
            }
            if !self.ready.is_empty() {
                if self.next_fu_free <= self.cycle {
                    self.next_fu_free = self.fu.next_free_event(self.cycle).unwrap_or(u64::MAX);
                }
                next_event = next_event.min(self.next_fu_free);
            }
            if next_event != u64::MAX && next_event > self.cycle + 1 {
                let skipped = next_event - self.cycle - 1;
                if stalled {
                    self.result.dispatch_stall_cycles += skipped;
                }
                self.cycle += skipped;
            }
        }

        self.cycle += 1;
    }
}

impl TraceSink for PipelineSim {
    fn retire(&mut self, entry: TraceEntry) {
        self.feed(entry);
    }
}

/// How many decoded entries [`PipelineFanout`] accumulates before sweeping
/// the batch through its consumers: large enough to amortise the per-sweep
/// loop overhead and keep each consumer's state hot for a whole sweep,
/// small enough that the shared columns (~50 bytes per entry) stay resident
/// in L1/L2 while every consumer reads them.
const FANOUT_BATCH: usize = 256;

/// A fan-out consumer: one functional run drives several machine
/// configurations at once (the paper's way 1/2/4/8 sweep from a single
/// instruction stream).
///
/// The consumers advance in **lockstep over one decoded stream**: each
/// entry is renamed once, appended to a shared structure-of-arrays
/// [`DecodedBatch`], and once the batch fills (or the run ends) it is swept
/// through the consumers one at a time.  The batch sweep — rather than
/// feeding each entry to every consumer as it arrives — touches each
/// decoded entry's cache lines once per batch instead of once per
/// simulator, and keeps one simulator's window, queues and cache tables
/// hot for [`FANOUT_BATCH`] consecutive entries.  Because every consumer
/// still observes the identical entry sequence, the per-configuration
/// results are cycle-for-cycle identical to independent [`PipelineSim`]
/// runs (the differential suite pins this); consumers simply lag the
/// decode front by at most one batch until [`PipelineFanout::finish`].
#[derive(Debug, Clone)]
pub struct PipelineFanout {
    sims: Vec<PipelineSim>,
    /// The shared rename stage: each entry is decoded once and the decoded
    /// form is fed to every consumer.
    renamer: Renamer,
    /// The shared decoded arena of the current lockstep batch.
    batch: DecodedBatch,
}

impl Default for PipelineFanout {
    fn default() -> Self {
        PipelineFanout {
            sims: Vec::new(),
            renamer: Renamer::new(),
            batch: DecodedBatch::with_capacity(FANOUT_BATCH),
        }
    }
}

impl PipelineFanout {
    /// Creates a fan-out over the given configurations, in order.  Each
    /// consumer's window and functional-unit tables are pre-sized from its
    /// configuration ([`PipelineSim::new`]), so fanning out over a full
    /// configuration grid allocates once up front.
    pub fn new<I: IntoIterator<Item = PipelineConfig>>(configs: I) -> Self {
        let configs = configs.into_iter();
        let mut sims = Vec::with_capacity(configs.size_hint().0);
        sims.extend(configs.map(PipelineSim::new));
        PipelineFanout {
            sims,
            ..PipelineFanout::default()
        }
    }

    /// Adds one more consumer.  The new consumer must not join after
    /// feeding has started (it would miss the prefix of the stream); this
    /// is the caller's responsibility, as it always was.
    pub fn push(&mut self, config: PipelineConfig) {
        self.sims.push(PipelineSim::new(config));
    }

    /// Number of consumers.
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the fan-out has no consumers.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Feeds one entry to every consumer: decoding (renaming and metadata
    /// extraction) happens once, immediately; the timing consumers advance
    /// when the shared batch fills.
    pub fn feed(&mut self, entry: TraceEntry) {
        let decoded = self.renamer.decode(&entry);
        self.batch.push(&decoded);
        if self.batch.len() >= FANOUT_BATCH {
            self.sweep();
        }
    }

    /// Sweeps the buffered batch through every consumer and clears it.
    fn sweep(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        for sim in &mut self.sims {
            sim.feed_batch(&self.batch);
        }
        self.batch.clear();
    }

    /// Finishes every consumer, returning one [`SimResult`] per
    /// configuration, in construction order.
    pub fn finish(mut self) -> Vec<SimResult> {
        self.sweep();
        self.sims.into_iter().map(PipelineSim::finish).collect()
    }
}

impl TraceSink for PipelineFanout {
    fn retire(&mut self, entry: TraceEntry) {
        self.feed(entry);
    }
}

/// The out-of-order timing simulator (batch interface).
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: PipelineConfig) -> Self {
        config.validate().expect("invalid pipeline configuration");
        Pipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Starts an incremental consumer with this pipeline's configuration.
    pub fn streaming(&self) -> PipelineSim {
        PipelineSim::new(self.config.clone())
    }

    /// Replays a materialised dynamic trace — a convenience wrapper that
    /// feeds the whole trace through the incremental consumer.
    pub fn simulate(&self, trace: &Trace) -> SimResult {
        let mut sim = self.streaming();
        for e in trace.iter() {
            sim.feed(*e);
        }
        sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::HierarchyConfig;
    use crate::config::MemoryModel;
    use crate::reference::ReferenceSim;
    use mom_arch::{MemAccess, TraceEntry};
    use mom_isa::prelude::*;
    use mom_isa::Instruction;

    fn entry(instr: Instruction, vl: u16) -> TraceEntry {
        TraceEntry {
            instr,
            vl,
            taken: false,
            mem: None,
        }
    }

    fn entry_at(instr: Instruction, vl: u16, mem: MemAccess) -> TraceEntry {
        TraceEntry {
            instr,
            vl,
            taken: false,
            mem: Some(mem),
        }
    }

    fn add(rd: u8, ra: u8, rb: u8) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            rd,
            ra,
            rb,
        }
    }

    fn load(rd: u8, base: u8) -> Instruction {
        Instruction::Load {
            size: MemSize::Quad,
            signed: false,
            rd,
            base,
            offset: 0,
        }
    }

    fn sim(width: usize, entries: Vec<TraceEntry>) -> SimResult {
        let trace: Trace = entries.into_iter().collect();
        Pipeline::new(PipelineConfig::way(width)).simulate(&trace)
    }

    fn sim_mem(width: usize, latency: u64, entries: Vec<TraceEntry>) -> SimResult {
        let trace: Trace = entries.into_iter().collect();
        let cfg = PipelineConfig::way_with_memory(width, MemoryModel::Fixed { latency });
        Pipeline::new(cfg).simulate(&trace)
    }

    /// Runs the same entries through the naive reference engine.
    fn sim_reference(width: usize, latency: u64, entries: &[TraceEntry]) -> SimResult {
        let cfg = PipelineConfig::way_with_memory(width, MemoryModel::Fixed { latency });
        let mut sim = ReferenceSim::new(cfg);
        for e in entries {
            sim.feed(*e);
        }
        sim.finish()
    }

    fn store(rs: u8, base: u8) -> Instruction {
        Instruction::Store {
            size: MemSize::Quad,
            rs,
            base,
            offset: 0,
        }
    }

    #[test]
    fn empty_trace() {
        let r = sim(4, vec![]);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn empty_stream_finishes_at_cycle_zero() {
        let r = PipelineSim::new(PipelineConfig::way(4)).finish();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn incremental_feed_matches_batch_simulate() {
        // A mixed trace with dependences, memory and matrix instructions.
        let mut entries = Vec::new();
        for i in 0..100u8 {
            entries.push(entry(add(i % 8, (i + 1) % 8, (i + 2) % 8), 1));
            if i % 3 == 0 {
                entries.push(entry(load(i % 8, 30), 1));
            }
            if i % 7 == 0 {
                entries.push(entry(
                    Instruction::MomOp {
                        op: PackedOp::Add(Overflow::Wrap),
                        ty: ElemType::U8,
                        md: 0,
                        ma: 1,
                        mb: MomOperand::Mat(2),
                    },
                    (i % 16 + 1) as u16,
                ));
            }
        }
        for width in [1, 2, 4, 8] {
            let trace: Trace = entries.iter().copied().collect();
            let batch = Pipeline::new(PipelineConfig::way(width)).simulate(&trace);
            let mut streaming = PipelineSim::new(PipelineConfig::way(width));
            for e in &entries {
                streaming.feed(*e);
            }
            let streamed = streaming.finish();
            assert_eq!(batch.cycles, streamed.cycles, "width {width}");
            assert_eq!(batch.instructions, streamed.instructions);
            assert_eq!(batch.operations, streamed.operations);
            assert_eq!(batch.max_rob_occupancy, streamed.max_rob_occupancy);
            assert_eq!(batch.dispatch_stall_cycles, streamed.dispatch_stall_cycles);
            assert_eq!(batch.fu_busy_cycles, streamed.fu_busy_cycles);
        }
    }

    #[test]
    fn pending_buffer_stays_below_one_fetch_group() {
        let mut sim = PipelineSim::new(PipelineConfig::way(4));
        for i in 0..1000u32 {
            sim.feed(entry(add((i % 16) as u8, 20, 21), 1));
            assert!(sim.pending_len() < 4, "pending must stay bounded");
            assert!(sim.window_len() <= sim.config.rob_size);
            assert!(
                sim.store_queue.len() <= sim.window_len(),
                "the store queue only holds window entries"
            );
        }
        let r = sim.finish();
        assert_eq!(r.instructions, 1000);
    }

    #[test]
    fn fanout_matches_individual_runs() {
        let entries: Vec<TraceEntry> = (0..64)
            .map(|i| entry(add((i % 8) as u8, 20, 21), 1))
            .collect();
        let mut fanout = PipelineFanout::new([1, 2, 4, 8].map(PipelineConfig::way));
        for e in &entries {
            fanout.feed(*e);
        }
        let results = fanout.finish();
        let trace: Trace = entries.into_iter().collect();
        for (width, got) in [1usize, 2, 4, 8].into_iter().zip(&results) {
            let alone = Pipeline::new(PipelineConfig::way(width)).simulate(&trace);
            assert_eq!(alone.cycles, got.cycles, "width {width}");
            assert_eq!(alone.instructions, got.instructions, "width {width}");
        }
    }

    #[test]
    fn dependent_chain_runs_at_one_per_cycle() {
        // r1 = r1 + r1, 64 times: a serial chain.
        let n = 64;
        let entries = vec![entry(add(1, 1, 1), 1); n];
        let r = sim(8, entries);
        assert_eq!(r.instructions, n as u64);
        // One add per cycle plus a small pipeline fill overhead.
        assert!(r.cycles >= n as u64, "cycles {} < {}", r.cycles, n);
        assert!(r.cycles <= n as u64 + 8, "chain too slow: {}", r.cycles);
    }

    #[test]
    fn independent_adds_scale_with_width() {
        // 256 fully independent adds (different destination registers,
        // sources never written).
        let entries: Vec<TraceEntry> = (0..256)
            .map(|i| entry(add((i % 16) as u8, 20, 21), 1))
            .collect();
        let narrow = sim(1, entries.clone());
        let wide = sim(8, entries);
        assert!(
            narrow.cycles > 2 * wide.cycles,
            "8-way ({}) should be much faster than 1-way ({})",
            wide.cycles,
            narrow.cycles
        );
        assert!(wide.ipc() > 3.0, "8-way IPC too low: {}", wide.ipc());
        assert!(narrow.ipc() <= 1.01);
    }

    #[test]
    fn memory_latency_hurts_dependent_loads() {
        // Pointer chase: each load feeds the next address.
        let n = 32;
        let entries = vec![entry(load(1, 1), 1); n];
        let fast = sim_mem(4, 1, entries.clone());
        let slow = sim_mem(4, 50, entries);
        assert!(
            slow.cycles > 40 * fast.cycles / 2,
            "50-cycle latency must dominate a pointer chase: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn independent_loads_are_pipelined_through_the_ports() {
        // Independent loads to different registers: the window and the two
        // ports let latency overlap, so the slowdown from latency 1 to 50 is
        // far less than 50x.
        let entries: Vec<TraceEntry> = (0..256)
            .map(|i| entry(load((i % 8) as u8, 30), 1))
            .collect();
        let fast = sim_mem(4, 1, entries.clone());
        let slow = sim_mem(4, 50, entries);
        let slowdown = slow.cycles as f64 / fast.cycles as f64;
        assert!(
            slowdown < 10.0,
            "independent loads should hide latency, slowdown {slowdown}"
        );
        assert!(slowdown > 1.0);
    }

    #[test]
    fn matrix_instruction_occupies_lanes_for_vl_cycles() {
        // One MOM add of VL=16 on a 2-lane unit: occupancy 8 cycles.
        let mom_add = Instruction::MomOp {
            op: PackedOp::Add(Overflow::Wrap),
            ty: ElemType::U8,
            md: 0,
            ma: 1,
            mb: MomOperand::Mat(2),
        };
        let r16 = sim(4, vec![entry(mom_add, 16)]);
        let r4 = sim(4, vec![entry(mom_add, 4)]);
        assert!(r16.cycles > r4.cycles, "longer vectors must take longer");
        assert_eq!(r16.operations, 128);
        assert_eq!(r4.operations, 32);
    }

    #[test]
    fn mdmx_accumulator_recurrence_serialises() {
        // 32 accumulate steps on the same accumulator: the read-modify-write
        // dependence forces them to execute back to back at the multiplier
        // latency (3 cycles each).
        let acc_step = Instruction::AccStep {
            op: AccumOp::MulAdd,
            ty: ElemType::I16,
            acc: 0,
            va: 1,
            vb: 2,
        };
        let r = sim(8, vec![entry(acc_step, 1); 32]);
        assert!(
            r.cycles >= 32 * 3,
            "accumulator recurrence must serialise at the multiply latency, got {}",
            r.cycles
        );
    }

    #[test]
    fn mom_accumulator_amortises_the_recurrence() {
        // The same 32 x 4-lane multiply-accumulate work expressed as two
        // MOM matrix accumulate instructions of VL=16 finishes much sooner
        // than 32 chained MDMX steps.
        let mdmx_step = Instruction::AccStep {
            op: AccumOp::MulAdd,
            ty: ElemType::I16,
            acc: 0,
            va: 1,
            vb: 2,
        };
        let mom_step = Instruction::MomAccStep {
            op: AccumOp::MulAdd,
            ty: ElemType::I16,
            acc: 0,
            ma: 1,
            mb: MomOperand::Mat(2),
        };
        let mdmx = sim(4, vec![entry(mdmx_step, 1); 32]);
        let mom = sim(4, vec![entry(mom_step, 16); 2]);
        assert_eq!(mdmx.operations, mom.operations);
        assert!(
            mom.cycles * 2 < mdmx.cycles,
            "MOM ({}) must amortise the accumulator recurrence vs MDMX ({})",
            mom.cycles,
            mdmx.cycles
        );
    }

    #[test]
    fn vector_load_amortises_memory_latency() {
        // 16 rows loaded by one MOM load vs 16 dependent-free MMX loads,
        // with 50-cycle memory: the matrix load pays the latency once.
        let mom_load = Instruction::MomLoad {
            md: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        let mmx_load = |vd: u8| Instruction::MmxLoad {
            vd,
            base: 1,
            offset: 0,
            ty: ElemType::U8,
        };
        // Give the scalar version a dependent consumer after each load to
        // model a typical use, and the MOM version a single consumer.
        let mut mmx_entries = Vec::new();
        for i in 0..16u8 {
            mmx_entries.push(entry(mmx_load(i % 8), 1));
        }
        let mom_entries = vec![entry(mom_load, 16)];
        let mmx = sim_mem(1, 50, mmx_entries);
        let mom = sim_mem(1, 50, mom_entries);
        assert_eq!(mmx.operations, mom.operations);
        assert!(
            mom.cycles < mmx.cycles,
            "a single strided matrix load ({}) must not be slower than 16 scalar packed loads ({}) on a narrow machine",
            mom.cycles,
            mmx.cycles
        );
    }

    #[test]
    fn rob_pressure_is_reported() {
        // A long-latency load at the head blocks commit; the window fills up
        // and dispatch stalls.
        let mut entries = vec![entry(load(1, 1), 1)];
        for _ in 0..300 {
            entries.push(entry(add(2, 2, 2), 1));
        }
        let r = sim_mem(4, 50, entries);
        assert!(r.max_rob_occupancy >= 32);
        assert!(r.dispatch_stall_cycles > 0);
    }

    #[test]
    fn transpose_unit_is_not_pipelined() {
        // Four back-to-back transposes on different registers (no data
        // dependence): a non-pipelined 10-cycle unit serialises them.
        let entries = vec![
            entry(
                Instruction::MomTranspose {
                    md: 0,
                    ms: 4,
                    ty: ElemType::U8,
                },
                1,
            ),
            entry(
                Instruction::MomTranspose {
                    md: 1,
                    ms: 5,
                    ty: ElemType::U8,
                },
                1,
            ),
            entry(
                Instruction::MomTranspose {
                    md: 2,
                    ms: 6,
                    ty: ElemType::U8,
                },
                1,
            ),
            entry(
                Instruction::MomTranspose {
                    md: 3,
                    ms: 7,
                    ty: ElemType::U8,
                },
                1,
            ),
        ];
        let r = sim(4, entries);
        assert!(
            r.cycles >= 4 * 10,
            "four non-pipelined transposes must serialise: {}",
            r.cycles
        );
    }

    #[test]
    fn transpose_latency_is_not_double_counted() {
        // A single transpose on an idle machine: issue + 10-cycle latency +
        // commit.  Before the occupancy fix the completion time was
        // `latency + occupancy - 1 = 19` cycles after issue — charging the
        // pool latency twice.
        let r = sim(
            4,
            vec![entry(
                Instruction::MomTranspose {
                    md: 0,
                    ms: 4,
                    ty: ElemType::U8,
                },
                1,
            )],
        );
        assert!(
            r.cycles >= 10 && r.cycles <= 14,
            "one transpose must take ~latency cycles, got {}",
            r.cycles
        );
    }

    #[test]
    fn vec_mem_occupancy_follows_traced_bytes() {
        // A 16-row matrix load moves 128 bytes; the 2-word (16-byte) port
        // needs 8 cycles whether the size comes from the metadata or from
        // the VL fallback.
        let mom_load = Instruction::MomLoad {
            md: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        let with_meta = sim(
            4,
            vec![entry_at(
                mom_load,
                16,
                MemAccess::strided(0x100, 8, 16, 8, false),
            )],
        );
        let without = sim(4, vec![entry(mom_load, 16)]);
        assert_eq!(with_meta.fu_busy_cycles[&FuClass::VecMem], 8);
        assert_eq!(without.fu_busy_cycles[&FuClass::VecMem], 8);
        assert_eq!(with_meta.cycles, without.cycles);
    }

    #[test]
    fn load_stalls_behind_older_overlapping_store() {
        // r1 <- mem (50 cycles), store r1 -> 0x100, load <- 0x100.
        // The final load overlaps the store and must wait for it; a load
        // from a disjoint address may issue around it.
        let chain = |load_addr: u64| {
            vec![
                entry_at(load(1, 10), 1, MemAccess::unit(0x500, 8, false)),
                entry_at(store(1, 11), 1, MemAccess::unit(0x100, 8, true)),
                entry_at(load(3, 12), 1, MemAccess::unit(load_addr, 8, false)),
            ]
        };
        let overlapping = sim_mem(4, 50, chain(0x100));
        let disjoint = sim_mem(4, 50, chain(0x200));
        assert!(
            overlapping.cycles >= disjoint.cycles + 40,
            "overlapping load ({}) must serialise behind the store ({})",
            overlapping.cycles,
            disjoint.cycles
        );
    }

    #[test]
    fn load_stalls_behind_older_unknown_address_store() {
        // The same chain, but the store carries no address metadata: the
        // load must conservatively wait even though its own address is known.
        let chain = |store_mem: Option<MemAccess>| {
            vec![
                entry_at(load(1, 10), 1, MemAccess::unit(0x500, 8, false)),
                TraceEntry {
                    instr: store(1, 11),
                    vl: 1,
                    taken: false,
                    mem: store_mem,
                },
                entry_at(load(3, 12), 1, MemAccess::unit(0x200, 8, false)),
            ]
        };
        let unknown = sim_mem(4, 50, chain(None));
        let known_disjoint = sim_mem(4, 50, chain(Some(MemAccess::unit(0x100, 8, true))));
        assert!(
            unknown.cycles >= known_disjoint.cycles + 40,
            "an unknown-address store must block younger loads ({} vs {})",
            unknown.cycles,
            known_disjoint.cycles
        );
    }

    // -----------------------------------------------------------------
    // Directed regressions for the store-address queue: the three memory
    // ordering shapes must match the retained naive engine cycle-for-cycle
    // (the queue is an indexing change, not a policy change).
    // -----------------------------------------------------------------

    /// The three-instruction shapes the store queue decides: a producing
    /// load, a (possibly unknown-address) store depending on it, and a
    /// younger independent load that may or may not conflict.
    fn ordering_chain(store_mem: Option<MemAccess>, load_addr: u64) -> Vec<TraceEntry> {
        vec![
            entry_at(load(1, 10), 1, MemAccess::unit(0x500, 8, false)),
            TraceEntry {
                instr: store(1, 11),
                vl: 1,
                taken: false,
                mem: store_mem,
            },
            entry_at(load(3, 12), 1, MemAccess::unit(load_addr, 8, false)),
        ]
    }

    #[test]
    fn store_queue_stalls_load_behind_unknown_address_store() {
        let entries = ordering_chain(None, 0x200);
        for (width, latency) in [(1, 50), (4, 50), (8, 12)] {
            let optimized = sim_mem(width, latency, entries.clone());
            let reference = sim_reference(width, latency, &entries);
            assert_eq!(
                optimized.cycles, reference.cycles,
                "unknown-address stall, width {width}, latency {latency}"
            );
            assert!(
                optimized.cycles > 2 * latency,
                "the load must serialise behind the whole chain: {}",
                optimized.cycles
            );
        }
    }

    #[test]
    fn store_queue_stalls_load_behind_overlapping_store() {
        let entries = ordering_chain(Some(MemAccess::unit(0x100, 8, true)), 0x100);
        for (width, latency) in [(1, 50), (4, 50), (8, 12)] {
            let optimized = sim_mem(width, latency, entries.clone());
            let reference = sim_reference(width, latency, &entries);
            assert_eq!(
                optimized.cycles, reference.cycles,
                "overlapping stall, width {width}, latency {latency}"
            );
            assert!(
                optimized.cycles > 2 * latency,
                "the overlapping load must wait for the store: {}",
                optimized.cycles
            );
        }
    }

    #[test]
    fn store_queue_passes_disjoint_load_through() {
        let blocked = ordering_chain(Some(MemAccess::unit(0x100, 8, true)), 0x100);
        let disjoint = ordering_chain(Some(MemAccess::unit(0x100, 8, true)), 0x200);
        for (width, latency) in [(1, 50), (4, 50), (8, 12)] {
            let optimized = sim_mem(width, latency, disjoint.clone());
            let reference = sim_reference(width, latency, &disjoint);
            assert_eq!(
                optimized.cycles, reference.cycles,
                "disjoint pass-through, width {width}, latency {latency}"
            );
            assert!(
                optimized.cycles + latency / 2 <= sim_mem(width, latency, blocked.clone()).cycles,
                "a provably disjoint load must issue around the store"
            );
        }
    }

    #[test]
    fn store_queue_handles_interleaved_stores_and_loads() {
        // Several in-flight stores at once, some overlapping the probing
        // loads and some not, with an unknown-address store in the middle —
        // exercised across every width against the reference engine.
        let mut entries = Vec::new();
        for i in 0..8u8 {
            entries.push(entry_at(
                load(1, 10),
                1,
                MemAccess::unit(0x1000 + i as u64 * 64, 8, false),
            ));
            entries.push(entry_at(
                store(1, 11),
                1,
                MemAccess::unit(0x100 + i as u64 * 16, 8, true),
            ));
            if i % 3 == 2 {
                entries.push(entry(store(1, 12), 1)); // unknown address
            }
            entries.push(entry_at(
                load(3, 12),
                1,
                MemAccess::unit(
                    if i % 2 == 0 {
                        0x100 + i as u64 * 16
                    } else {
                        0x4000
                    },
                    8,
                    false,
                ),
            ));
        }
        for width in [1, 2, 4, 8] {
            let optimized = sim_mem(width, 50, entries.clone());
            let reference = sim_reference(width, 50, &entries);
            assert_eq!(optimized.cycles, reference.cycles, "width {width}");
            assert_eq!(
                optimized.dispatch_stall_cycles,
                reference.dispatch_stall_cycles
            );
            assert_eq!(optimized.max_rob_occupancy, reference.max_rob_occupancy);
        }
    }

    #[test]
    fn widest_arity_instruction_renames_without_panicking() {
        // MomStore reads four registers (matrix, base, stride, VL); write
        // all four first so every source has a producer.
        let mut sim = PipelineSim::new(PipelineConfig::way(4));
        sim.feed(entry(Instruction::Li { rd: 1, imm: 0x100 }, 1));
        sim.feed(entry(Instruction::Li { rd: 2, imm: 8 }, 1));
        sim.feed(entry(Instruction::SetVlImm { vl: 8 }, 1));
        sim.feed(entry(
            Instruction::MomLoad {
                md: 0,
                base: 1,
                stride: 2,
                ty: ElemType::U8,
            },
            8,
        ));
        let mom_store = Instruction::MomStore {
            ms: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        assert_eq!(mom_store.sources().len(), 4, "widest-arity instruction");
        sim.feed(entry(mom_store, 8));
        let r = sim.finish();
        assert_eq!(r.instructions, 5);
    }

    #[test]
    fn hierarchy_charges_misses_then_hits() {
        let cfg = PipelineConfig::way_with_memory(4, MemoryModel::CACHE);
        let trace: Trace = vec![
            entry_at(load(1, 10), 1, MemAccess::unit(0x1000, 8, false)),
            entry_at(load(2, 10), 1, MemAccess::unit(0x1000, 8, false)),
        ]
        .into_iter()
        .collect();
        let r = Pipeline::new(cfg).simulate(&trace);
        assert_eq!(r.cache.l1_misses, 1, "cold miss");
        assert_eq!(r.cache.l2_misses, 1);
        assert_eq!(r.cache.l1_hits, 1, "second access hits the filled line");
        // The cold miss pays the full 1+12+50 chain.
        assert!(r.cycles > 60, "cold miss must dominate: {}", r.cycles);
        // A fixed 1-cycle model records no cache activity.
        let fixed = sim_mem(4, 1, vec![entry(load(1, 10), 1)]);
        assert_eq!(fixed.cache, Default::default());
    }

    #[test]
    fn zero_miss_cost_hierarchy_degenerates_to_fixed() {
        let mut h = HierarchyConfig::DEFAULT;
        h.l1.hit_latency = 5;
        h.l2.hit_latency = 0;
        h.memory_latency = 0;
        let entries = vec![
            entry_at(load(1, 10), 1, MemAccess::unit(0x500, 8, false)),
            entry(add(2, 1, 1), 1),
            entry_at(store(2, 11), 1, MemAccess::unit(0x100, 8, true)),
            entry_at(load(3, 12), 1, MemAccess::unit(0x100, 8, false)),
            entry(add(4, 3, 3), 1),
        ];
        let trace: Trace = entries.into_iter().collect();
        let hier = Pipeline::new(PipelineConfig::way_with_memory(
            4,
            MemoryModel::Hierarchy(h),
        ))
        .simulate(&trace);
        let fixed = Pipeline::new(PipelineConfig::way_with_memory(
            4,
            MemoryModel::Fixed { latency: 5 },
        ))
        .simulate(&trace);
        assert_eq!(hier.cycles, fixed.cycles);
        assert_eq!(hier.instructions, fixed.instructions);
        assert_eq!(hier.dispatch_stall_cycles, fixed.dispatch_stall_cycles);
    }

    #[test]
    fn into_parts_matches_finish_and_returns_the_cache() {
        let entries = vec![
            entry_at(load(1, 10), 1, MemAccess::unit(0x1000, 8, false)),
            entry(add(2, 1, 1), 1),
        ];
        let cfg = PipelineConfig::way_with_memory(4, MemoryModel::CACHE);
        let mut a = PipelineSim::new(cfg.clone());
        let mut b = PipelineSim::new(cfg);
        for e in &entries {
            a.feed(*e);
            b.feed(*e);
        }
        let finished = a.finish();
        let (result, cache) = b.into_parts();
        assert_eq!(finished.cycles, result.cycles);
        assert_eq!(finished.cache, result.cache);
        let cache = cache.expect("a hierarchy config must return its cache");
        assert_eq!(cache.stats, result.cache);
        // Fixed memory has no cache to hand over.
        let fixed = PipelineSim::new(PipelineConfig::way(4));
        assert!(fixed.into_parts().1.is_none());
    }

    #[test]
    fn resume_keeps_warm_lines_and_zeroes_phase_counters() {
        let probe = entry_at(load(1, 10), 1, MemAccess::unit(0x1000, 8, false));
        let cfg = PipelineConfig::way_with_memory(4, MemoryModel::CACHE);

        // Phase 1 takes the cold miss.
        let mut first = PipelineSim::new(cfg.clone());
        first.feed(probe);
        let (warm_up, cache) = first.into_parts();
        assert_eq!(warm_up.cache.l1_misses, 1);

        // Phase 2 resumes on the warm hierarchy: same access now hits L1,
        // and the phase's counters start from zero.
        let mut second = PipelineSim::resume(cfg.clone(), cache);
        second.feed(probe);
        let warm = second.finish();
        assert_eq!(warm.cache.l1_hits, 1, "warm line must hit");
        assert_eq!(warm.cache.l1_misses, 0, "phase counters are per-phase");
        assert!(
            warm.cycles < warm_up.cycles,
            "a warm phase ({}) must beat the cold one ({})",
            warm.cycles,
            warm_up.cycles
        );

        // A cold phase of the same stream pays the miss chain again.
        let mut cold = PipelineSim::resume(cfg, None);
        cold.feed(probe);
        assert_eq!(cold.finish().cache.l1_misses, 1);
    }

    #[test]
    fn resume_under_fixed_memory_ignores_the_warm_cache() {
        let probe = entry_at(load(1, 10), 1, MemAccess::unit(0x2000, 8, false));
        let mut donor = PipelineSim::new(PipelineConfig::way_with_memory(4, MemoryModel::CACHE));
        donor.feed(probe);
        let (_, cache) = donor.into_parts();

        let fixed_cfg = PipelineConfig::way_with_memory(4, MemoryModel::MAIN_MEMORY);
        let mut fresh = PipelineSim::new(fixed_cfg.clone());
        let mut resumed = PipelineSim::resume(fixed_cfg, cache);
        fresh.feed(probe);
        resumed.feed(probe);
        let fresh = fresh.finish();
        let resumed = resumed.finish();
        assert_eq!(fresh.cycles, resumed.cycles);
        assert_eq!(resumed.cache, Default::default());
    }

    #[test]
    fn stats_accumulate_media_and_memory_counts() {
        let mom_load = Instruction::MomLoad {
            md: 0,
            base: 1,
            stride: 2,
            ty: ElemType::U8,
        };
        let r = sim(4, vec![entry(mom_load, 8), entry(add(1, 2, 3), 1)]);
        assert_eq!(r.instructions, 2);
        assert_eq!(r.media_instructions, 1);
        assert_eq!(r.memory_instructions, 1);
        assert_eq!(r.operations, 64 + 1);
        assert!(r.fu_busy_cycles[&FuClass::VecMem] >= 4);
    }
}
