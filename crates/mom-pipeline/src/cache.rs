//! A two-level set-associative data-cache model driven by the effective
//! addresses the functional simulator records in the trace.
//!
//! The paper evaluates its ISAs under three *fixed* memory latencies (1, 12
//! and 50 cycles); this module adds the hardware-faithful alternative: an
//! L1/L2 hierarchy with LRU replacement and configurable geometry, simulated
//! in program (trace) order.  Each memory instruction walks every cache line
//! its [`MemAccess`] touches; the instruction is charged the **worst** line
//! latency (misses within one instruction overlap — the memory system is
//! pipelined), which is exactly how a strided MOM matrix load amortises main
//! memory latency over `VL` rows while `VL` scalar loads each risk paying it.
//!
//! Simulating the cache in trace order (at rename, not at issue) keeps the
//! incremental consumer deterministic: streaming one entry at a time is
//! bit-identical to batch replay, which the workspace's equivalence property
//! tests rely on.

use mom_arch::MemAccess;

/// Geometry and hit latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Latency of a hit in this level, in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }

    /// Validates the geometry.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets == 0 || self.ways == 0 {
            return Err("cache must have at least one set and one way".into());
        }
        if self.line_bytes == 0 {
            return Err("cache line size must be at least one byte".into());
        }
        Ok(())
    }
}

/// Configuration of the full L1/L2 hierarchy behind
/// [`crate::MemoryModel::Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// First-level data cache.
    pub l1: CacheConfig,
    /// Second-level cache.
    pub l2: CacheConfig,
    /// Cycles added by an L2 miss (main-memory access time).
    pub memory_latency: u64,
}

impl HierarchyConfig {
    /// The default hierarchy used by the "real cache" experiments: a small
    /// 4 KiB / 2-way / 32 B-line L1 (1-cycle hits), a 128 KiB / 4-way /
    /// 64 B-line L2 (12-cycle hits) and 50-cycle main memory — the paper's
    /// three latency points, realised as actual levels.
    pub const DEFAULT: HierarchyConfig = HierarchyConfig {
        l1: CacheConfig {
            sets: 64,
            ways: 2,
            line_bytes: 32,
            hit_latency: 1,
        },
        l2: CacheConfig {
            sets: 512,
            ways: 4,
            line_bytes: 64,
            hit_latency: 12,
        },
        memory_latency: 50,
    };

    /// Validates both levels.
    pub fn validate(&self) -> Result<(), String> {
        self.l1.validate().map_err(|e| format!("L1: {e}"))?;
        self.l2.validate().map_err(|e| format!("L2: {e}"))?;
        Ok(())
    }
}

/// Hit/miss counters of a simulated hierarchy, accumulated per cache line
/// touched (a strided matrix access touching `N` lines counts `N` lookups).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1 lookups that hit.
    pub l1_hits: u64,
    /// L1 lookups that missed (and therefore looked up L2).
    pub l1_misses: u64,
    /// L2 lookups that hit.
    pub l2_hits: u64,
    /// L2 lookups that missed (and therefore went to main memory).
    pub l2_misses: u64,
}

impl CacheStats {
    /// Total L1 lookups.
    pub fn l1_accesses(&self) -> u64 {
        self.l1_hits + self.l1_misses
    }

    /// Adds another counter set into this one — how the sampled simulator
    /// ([`crate::sample`]) combines the counters of its detailed intervals
    /// and cache-warming fast-forward spans into one exact total.
    pub fn merge(&mut self, other: &CacheStats) {
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
    }
}

/// Runtime state of one level: per-set tag lists in LRU order (front =
/// most recently used).
#[derive(Debug, Clone)]
struct CacheLevel {
    config: CacheConfig,
    /// `log2(line_bytes)` when the line size is a power of two, so the
    /// per-lookup division becomes a shift (every realistic geometry,
    /// including the default hierarchy).
    line_shift: Option<u32>,
    /// `sets - 1` when the set count is a power of two, so the per-lookup
    /// modulo becomes a mask.
    set_mask: Option<u64>,
    sets: Vec<Vec<u64>>,
}

impl CacheLevel {
    fn new(config: CacheConfig) -> CacheLevel {
        CacheLevel {
            config,
            line_shift: config
                .line_bytes
                .is_power_of_two()
                .then(|| config.line_bytes.trailing_zeros()),
            set_mask: config
                .sets
                .is_power_of_two()
                .then(|| config.sets as u64 - 1),
            sets: vec![Vec::with_capacity(config.ways); config.sets],
        }
    }

    /// The line index containing a byte address.
    fn line_of(&self, addr: u64) -> u64 {
        match self.line_shift {
            Some(shift) => addr >> shift,
            None => addr / self.config.line_bytes,
        }
    }

    /// Looks up the line containing `addr`, filling it on a miss and
    /// updating LRU order. Returns whether the lookup hit.
    fn access(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set_index = match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.config.sets as u64) as usize,
        };
        let set = &mut self.sets[set_index];
        if let Some(pos) = set.iter().position(|&tag| tag == line) {
            let tag = set.remove(pos);
            set.insert(0, tag);
            true
        } else {
            set.insert(0, line);
            set.truncate(self.config.ways);
            false
        }
    }
}

/// The simulated L1/L2 data-cache hierarchy owned by one timing consumer.
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: CacheLevel,
    l2: CacheLevel,
    memory_latency: u64,
    /// Accumulated hit/miss counters.
    pub stats: CacheStats,
}

impl CacheSim {
    /// Creates a cold hierarchy.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: HierarchyConfig) -> CacheSim {
        config.validate().expect("invalid cache hierarchy");
        CacheSim {
            l1: CacheLevel::new(config.l1),
            l2: CacheLevel::new(config.l2),
            memory_latency: config.memory_latency,
            stats: CacheStats::default(),
        }
    }

    /// The geometry and latencies this hierarchy was built with.
    pub fn config(&self) -> HierarchyConfig {
        HierarchyConfig {
            l1: self.l1.config,
            l2: self.l2.config,
            memory_latency: self.memory_latency,
        }
    }

    /// Zeroes the hit/miss counters while keeping every cached line — how a
    /// multi-phase run starts a new phase's accounting on a warm hierarchy.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The latency of an access that hits in L1 (also charged to memory
    /// instructions whose trace entry carries no address metadata).
    pub fn hit_latency(&self) -> u64 {
        self.l1.config.hit_latency
    }

    /// Simulates one L1-line lookup (walking into L2 and memory on misses)
    /// and returns its latency.
    fn access_line(&mut self, addr: u64) -> u64 {
        let mut latency = self.l1.config.hit_latency;
        if self.l1.access(addr) {
            self.stats.l1_hits += 1;
            return latency;
        }
        self.stats.l1_misses += 1;
        latency += self.l2.config.hit_latency;
        if self.l2.access(addr) {
            self.stats.l2_hits += 1;
            return latency;
        }
        self.stats.l2_misses += 1;
        latency + self.memory_latency
    }

    /// Simulates every cache line touched by one memory instruction and
    /// returns the latency to charge it: the worst line latency, since the
    /// lines of a single (possibly strided) access are fetched in a
    /// pipelined fashion and overlap.
    pub fn access(&mut self, access: &MemAccess) -> u64 {
        let line = self.l1.config.line_bytes;
        let mut worst = self.l1.config.hit_latency;
        for row in 0..access.rows.max(1) {
            let start = access.row_addr(row);
            let span = access.row_bytes.max(1) as u64 - 1;
            match start.checked_add(span) {
                // Fast path: the row lies inside the 64-bit address space,
                // so the whole line walk stays in u64 (and the line-start
                // rounding is a single shift for power-of-two lines).
                Some(end) => {
                    let mut line_addr = self.l1.line_of(start) * line;
                    loop {
                        worst = worst.max(self.access_line(line_addr));
                        match line_addr.checked_add(line) {
                            Some(next) if next <= end => line_addr = next,
                            _ => break,
                        }
                    }
                }
                // A row starting near u64::MAX (e.g. a negative-stride
                // access that wrapped): do the walk in u128 so the
                // line-address arithmetic cannot overflow.  Truncating back
                // to u64 keeps the modular address space consistent with
                // `MemAccess::row_addr`.
                None => {
                    let line = line as u128;
                    let start = start as u128;
                    let end = start + span as u128;
                    let mut line_addr = start - start % line;
                    while line_addr <= end {
                        worst = worst.max(self.access_line(line_addr as u64));
                        line_addr += line;
                    }
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                sets: 4,
                ways: 2,
                line_bytes: 32,
                hit_latency: 1,
            },
            l2: CacheConfig {
                sets: 16,
                ways: 4,
                line_bytes: 64,
                hit_latency: 12,
            },
            memory_latency: 50,
        }
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut sim = CacheSim::new(tiny());
        let a = MemAccess::unit(0x1000, 8, false);
        // Cold: misses both levels, pays the full chain.
        assert_eq!(sim.access(&a), 1 + 12 + 50);
        assert_eq!(sim.stats.l1_misses, 1);
        assert_eq!(sim.stats.l2_misses, 1);
        // Warm: L1 hit.
        assert_eq!(sim.access(&a), 1);
        assert_eq!(sim.stats.l1_hits, 1);
        // A neighbour in the same line also hits.
        assert_eq!(sim.access(&MemAccess::unit(0x1010, 8, false)), 1);
        assert_eq!(sim.stats.l1_hits, 2);
    }

    #[test]
    fn l2_catches_l1_conflict_evictions() {
        let mut sim = CacheSim::new(tiny());
        let cfg = tiny();
        // Three lines mapping to the same L1 set (set stride = sets * line).
        let set_stride = cfg.l1.sets as u64 * cfg.l1.line_bytes;
        let lines = [0x0u64, set_stride, 2 * set_stride];
        for &a in &lines {
            sim.access(&MemAccess::unit(a, 8, false));
        }
        // 2-way L1: line 0 was evicted, but it still sits in the bigger L2.
        assert_eq!(sim.access(&MemAccess::unit(lines[0], 8, false)), 1 + 12);
        assert_eq!(sim.stats.l1_misses, 4);
        assert_eq!(sim.stats.l2_hits, 1);
        assert_eq!(sim.stats.l2_misses, 3);
    }

    #[test]
    fn lru_keeps_the_recently_used_line() {
        let mut sim = CacheSim::new(tiny());
        let cfg = tiny();
        let set_stride = cfg.l1.sets as u64 * cfg.l1.line_bytes;
        let (a, b, c) = (0x0u64, set_stride, 2 * set_stride);
        let unit = |addr| MemAccess::unit(addr, 8, false);
        sim.access(&unit(a)); // miss, LRU: [a]
        sim.access(&unit(b)); // miss, LRU: [b, a]
        sim.access(&unit(a)); // hit,  LRU: [a, b]
        sim.access(&unit(c)); // miss, evicts b (least recent)
        let hits_before = sim.stats.l1_hits;
        sim.access(&unit(a));
        assert_eq!(sim.stats.l1_hits, hits_before + 1, "a must have survived");
        sim.access(&unit(b));
        assert_eq!(
            sim.stats.l1_hits,
            hits_before + 1,
            "b must have been evicted"
        );
    }

    #[test]
    fn strided_access_touches_one_line_per_row() {
        let mut sim = CacheSim::new(tiny());
        // 16 rows of 8 bytes, 384 bytes apart: 16 distinct lines, all cold.
        let a = MemAccess::strided(0x0, 8, 16, 384, false);
        let latency = sim.access(&a);
        assert_eq!(sim.stats.l1_accesses(), 16);
        assert_eq!(sim.stats.l1_misses, 16);
        // The misses overlap: one worst-case chain, not 16 of them.
        assert_eq!(latency, 1 + 12 + 50);
        // Second pass: every row hits in L1 (capacity 4*2 lines is too small
        // for 16 lines... so the early rows were evicted and only the tail
        // survives; L2 (64 lines) holds them all).
        let warm = sim.access(&a);
        assert!(warm <= 1 + 12, "warm strided pass must at worst hit L2");
    }

    #[test]
    fn unaligned_access_straddles_two_lines() {
        let mut sim = CacheSim::new(tiny());
        // 8 bytes starting 4 bytes before a line boundary: two lookups.
        sim.access(&MemAccess::unit(32 - 4, 8, false));
        assert_eq!(sim.stats.l1_accesses(), 2);
    }

    #[test]
    fn zero_miss_cost_hierarchy_charges_flat_latency() {
        let mut cfg = tiny();
        cfg.l1.hit_latency = 7;
        cfg.l2.hit_latency = 0;
        cfg.memory_latency = 0;
        let mut sim = CacheSim::new(cfg);
        for addr in (0..4096u64).step_by(96) {
            assert_eq!(sim.access(&MemAccess::unit(addr, 8, false)), 7);
        }
    }

    #[test]
    fn accesses_near_the_address_space_edge_terminate() {
        // A negative-stride access whose later rows wrap around zero, and a
        // row starting at the very top of the address space: both must walk
        // a bounded number of lines (no overflow panic, no wrapped loop).
        let mut sim = CacheSim::new(tiny());
        sim.access(&MemAccess::strided(0, 8, 2, -32, false));
        sim.access(&MemAccess::unit(u64::MAX - 3, 8, true));
        assert!(sim.stats.l1_accesses() <= 5, "bounded line walk");
    }

    #[test]
    fn strided_rows_straddle_a_set_boundary() {
        let mut sim = CacheSim::new(tiny());
        let cfg = tiny();
        // Each 40-byte row starts 16 bytes before a line boundary, so every
        // row spans two consecutive lines — which live in two *consecutive
        // sets* (line index mod sets).  4 rows ⇒ 8 line lookups, all cold.
        let line = cfg.l1.line_bytes;
        let a = MemAccess::strided(line - 16, 40, 4, 2 * line as i64, false);
        sim.access(&a);
        assert_eq!(sim.stats.l1_accesses(), 8);
        assert_eq!(sim.stats.l1_misses, 8);
        // The 8 lines span both halves of each straddled boundary; a second
        // pass hits every one of them in L1 (8 lines fit the 4-set × 2-way
        // cache exactly).
        assert_eq!(sim.access(&a), cfg.l1.hit_latency);
        assert_eq!(sim.stats.l1_hits, 8);
    }

    #[test]
    fn same_set_aliasing_thrashes_l1_but_not_l2() {
        let mut sim = CacheSim::new(tiny());
        let cfg = tiny();
        // A strided access whose stride equals the L1 set stride: all four
        // rows alias into the *same* L1 set.  With 2 ways, LRU evicts the
        // first rows as the later ones arrive.
        let set_stride = cfg.l1.sets as u64 * cfg.l1.line_bytes;
        let a = MemAccess::strided(0, 8, 4, set_stride as i64, false);
        sim.access(&a);
        assert_eq!(sim.stats.l1_misses, 4, "cold pass misses every row");
        // Replaying the same pattern thrashes: row i always evicted by the
        // time it comes around again (LRU keeps only the last two rows, and
        // the replay starts from the first).
        sim.access(&a);
        assert_eq!(sim.stats.l1_hits, 0, "L1 aliasing defeats every reuse");
        assert_eq!(sim.stats.l1_misses, 8);
        // The same four lines do not alias in the larger L2 (different set
        // count and line size), so the second pass is caught there.
        assert_eq!(sim.stats.l2_hits, 4);
        assert_eq!(sim.stats.l2_misses, 4);
    }

    #[test]
    fn access_wider_than_the_line_size_walks_every_line() {
        let mut sim = CacheSim::new(tiny());
        let cfg = tiny();
        // One aligned 96-byte row = three full 32-byte lines...
        sim.access(&MemAccess::unit(0, 3 * cfg.l1.line_bytes as u32, false));
        assert_eq!(sim.stats.l1_accesses(), 3);
        // ...and misaligning the same width by one byte touches a fourth.
        let mut sim = CacheSim::new(tiny());
        sim.access(&MemAccess::unit(1, 3 * cfg.l1.line_bytes as u32, false));
        assert_eq!(sim.stats.l1_accesses(), 4);
        // The charged latency is still one worst-case chain, not a sum.
        let mut sim = CacheSim::new(tiny());
        let latency = sim.access(&MemAccess::unit(0, 3 * cfg.l1.line_bytes as u32, false));
        assert_eq!(latency, 1 + 12 + 50);
    }

    #[test]
    fn validation_rejects_degenerate_geometry() {
        let mut cfg = tiny();
        cfg.l1.ways = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = tiny();
        cfg.l2.line_bytes = 0;
        assert!(cfg.validate().is_err());
        assert!(HierarchyConfig::DEFAULT.validate().is_ok());
        assert_eq!(HierarchyConfig::DEFAULT.l1.capacity(), 4 * 1024);
        assert_eq!(HierarchyConfig::DEFAULT.l2.capacity(), 128 * 1024);
    }
}
