//! The naive out-of-order engine, retained as an executable specification.
//!
//! This is the original scan-based implementation of the timing model: every
//! cycle it walks the whole reorder buffer looking for issuable entries,
//! re-checks every producer of every candidate, scans **all** older window
//! entries for conflicting stores (`O(window²)` per cycle) and linearly
//! probes the functional-unit busy tables.  The optimised engine in
//! [`crate::ooo`] replaces those scans with incremental state (wakeup lists,
//! a store-address queue, per-class free-unit heaps and a ready queue) but
//! must remain **cycle-for-cycle identical** to this one.
//!
//! The module exists so that equivalence is enforceable: the differential
//! property test in `tests/differential.rs` and the directed store-queue
//! regressions compare [`ReferenceSim`] against [`crate::PipelineSim`] on
//! arbitrary traces, and `momsim bench` measures both to report the
//! speed-up of the optimisation.  Keep this implementation simple and
//! obviously correct; do not optimise it.

use crate::cache::CacheSim;
use crate::config::PipelineConfig;
use crate::stats::SimResult;
use mom_arch::{TraceEntry, TraceSink};
use mom_isa::FuClass;
use std::collections::VecDeque;

/// Number of distinct register ids (see `mom_isa::Reg::id`).
const REG_ID_SPACE: usize = 256;

/// One instruction in flight (a reorder-buffer entry), or renamed and
/// waiting to be dispatched.
#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    /// Dynamic sequence number (index in the stream).
    seq: u64,
    /// Functional-unit class.
    fu: FuClass,
    /// Cycles of functional-unit occupancy.
    occupancy: u64,
    /// Execution latency (result available `latency + occupancy - 1` cycles
    /// after issue).
    latency: u64,
    /// Elementary operations performed (for the OPI statistics).
    ops: u64,
    /// Whether this is a multimedia instruction.
    is_media: bool,
    /// Whether this instruction accesses memory.
    is_memory: bool,
    /// Whether this instruction writes memory.
    is_store: bool,
    /// Conservative byte interval `[start, end)` the access covers, when the
    /// trace carries address metadata.
    mem_span: Option<(u64, u64)>,
    /// Sequence numbers of the producing instructions of each source.
    deps: [u64; 4],
    /// Number of valid entries in `deps`.
    dep_count: u8,
    /// Whether the instruction has been issued.
    issued: bool,
    /// Cycle at which the result is available (valid once issued).
    complete_cycle: u64,
}

/// The scan-based incremental timing consumer: same interface and same
/// cycle-for-cycle behaviour as [`crate::PipelineSim`], quadratic per-cycle
/// cost.  Use only as a correctness oracle or a benchmark baseline.
#[derive(Debug, Clone)]
pub struct ReferenceSim {
    config: PipelineConfig,
    dcache: Option<CacheSim>,
    pending: VecDeque<WindowEntry>,
    window: VecDeque<WindowEntry>,
    /// Per-unit busy-until cycle, indexed by [`FuClass::ALL`] position.
    fu_busy: Vec<Vec<u64>>,
    last_writer: [Option<u64>; REG_ID_SPACE],
    next_seq: u64,
    next_dispatch: u64,
    committed: u64,
    cycle: u64,
    result: SimResult,
}

impl ReferenceSim {
    /// Creates a reference consumer for the given machine configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: PipelineConfig) -> Self {
        config.validate().expect("invalid pipeline configuration");
        let fu_busy = FuClass::ALL
            .iter()
            .map(|c| vec![0u64; config.pool(*c).count])
            .collect();
        ReferenceSim {
            dcache: config.memory.hierarchy().copied().map(CacheSim::new),
            pending: VecDeque::new(),
            window: VecDeque::with_capacity(config.rob_size),
            fu_busy,
            last_writer: [None; REG_ID_SPACE],
            next_seq: 0,
            next_dispatch: 0,
            committed: 0,
            cycle: 0,
            result: SimResult::default(),
            config,
        }
    }

    /// Creates a reference consumer that resumes on a warm data cache (the
    /// phase boundary of a multi-kernel pipeline); see
    /// [`crate::PipelineSim::resume`].
    pub fn resume(config: PipelineConfig, dcache: Option<CacheSim>) -> Self {
        let mut sim = ReferenceSim::new(config);
        if let (Some(slot), Some(mut warm)) = (sim.dcache.as_mut(), dcache) {
            debug_assert_eq!(
                warm.config(),
                slot.config(),
                "resumed cache geometry must match the configuration"
            );
            warm.reset_stats();
            *slot = warm;
        }
        sim
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Occupancy (in cycles) of one dynamic instruction on its functional
    /// unit — see [`crate::PipelineSim`] for the cost model.
    fn occupancy(&self, entry: &TraceEntry) -> u64 {
        let vl = entry.vl.max(1) as u64;
        match entry.instr.fu_class() {
            FuClass::VecMem => {
                let port_bytes = self.config.vec_mem_words as u64 * 8;
                let bytes = entry.mem.map_or(vl * 8, |m| m.total_bytes());
                bytes.div_ceil(port_bytes).max(1)
            }
            _ if entry.instr.is_vl_dependent() => vl.div_ceil(self.config.media_lanes as u64),
            _ => 1,
        }
    }

    /// Consumes the next retired instruction of the stream.
    pub fn feed(&mut self, entry: TraceEntry) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let instr = &entry.instr;
        let mut deps = [0u64; 4];
        let mut dep_count = 0u8;
        for reg in instr.sources().iter() {
            if reg.is_zero() {
                continue;
            }
            if let Some(w) = self.last_writer[reg.id()] {
                debug_assert!(
                    (dep_count as usize) < deps.len(),
                    "more producers than dependence slots for {instr:?}"
                );
                if (dep_count as usize) < deps.len() {
                    deps[dep_count as usize] = w;
                    dep_count += 1;
                }
            }
        }
        for reg in instr.dests().iter() {
            if !reg.is_zero() {
                self.last_writer[reg.id()] = Some(seq);
            }
        }
        let fu = instr.fu_class();
        let latency = match (fu, &mut self.dcache) {
            (FuClass::Mem | FuClass::VecMem, Some(cache)) => match entry.mem.as_ref() {
                Some(access) => cache.access(access),
                None => cache.hit_latency(),
            },
            _ => self.config.latency(fu),
        };
        self.pending.push_back(WindowEntry {
            seq,
            fu,
            occupancy: self.occupancy(&entry),
            latency,
            ops: entry.ops(),
            is_media: instr.is_media(),
            is_memory: instr.is_memory(),
            is_store: instr.is_store(),
            mem_span: entry.mem.map(|m| m.span()),
            deps,
            dep_count,
            issued: false,
            complete_cycle: u64::MAX,
        });
        while self.pending.len() >= self.config.width {
            self.step_cycle();
        }
    }

    /// Runs the simulation to completion and returns the result.
    pub fn finish(self) -> SimResult {
        self.into_parts().0
    }

    /// Runs the simulation to completion and returns the result plus the
    /// simulated data cache in its final (warm) state.
    pub fn into_parts(mut self) -> (SimResult, Option<CacheSim>) {
        while self.committed < self.next_seq {
            self.step_cycle();
        }
        self.result.cycles = self.cycle;
        if let Some(cache) = &self.dcache {
            self.result.cache = cache.stats;
        }
        (self.result, self.dcache)
    }

    /// Simulates one cycle: commit, issue, dispatch.
    fn step_cycle(&mut self) {
        let cfg = &self.config;

        // Commit: in order, up to `width` completed instructions.
        let mut committed_this_cycle = 0;
        while committed_this_cycle < cfg.width {
            match self.window.front() {
                Some(e) if e.issued && e.complete_cycle <= self.cycle => {
                    self.result.instructions += 1;
                    self.result.operations += e.ops;
                    if e.is_media {
                        self.result.media_instructions += 1;
                    }
                    if e.is_memory {
                        self.result.memory_instructions += 1;
                    }
                    self.window.pop_front();
                    self.committed += 1;
                    committed_this_cycle += 1;
                }
                _ => break,
            }
        }

        // Issue: oldest-first, up to `width` ready instructions whose
        // functional unit is free.
        let front_seq = self
            .window
            .front()
            .map(|e| e.seq)
            .unwrap_or(self.next_dispatch);
        let class_index = |c: FuClass| FuClass::ALL.iter().position(|x| *x == c).unwrap();
        let mut issued_this_cycle = 0;
        for i in 0..self.window.len() {
            if issued_this_cycle >= cfg.width {
                break;
            }
            if self.window[i].issued {
                continue;
            }
            // Operand readiness: every producer must have completed.
            let mut ready = true;
            for d in 0..self.window[i].dep_count as usize {
                let dep_seq = self.window[i].deps[d];
                if dep_seq >= front_seq {
                    let dep = &self.window[(dep_seq - front_seq) as usize];
                    if !dep.issued || dep.complete_cycle > self.cycle {
                        ready = false;
                        break;
                    }
                }
                // Producers older than the window head have committed and
                // are therefore complete.
            }
            if !ready {
                continue;
            }
            // Memory ordering: a load may not issue past an older store that
            // has not yet written memory, unless both addresses are known
            // and the byte ranges are disjoint.
            if self.window[i].is_memory && !self.window[i].is_store {
                let load_span = self.window[i].mem_span;
                for j in 0..i {
                    let store = &self.window[j];
                    if !store.is_store || (store.issued && store.complete_cycle <= self.cycle) {
                        continue;
                    }
                    let disjoint = matches!(
                        (load_span, store.mem_span),
                        (Some(a), Some(b)) if !mom_arch::spans_overlap(a, b)
                    );
                    if !disjoint {
                        ready = false;
                        break;
                    }
                }
                if !ready {
                    continue;
                }
            }
            // Structural hazard: find a free unit of the class.
            let fu = self.window[i].fu;
            let pool = cfg.pool(fu);
            let ci = class_index(fu);
            let Some(unit) = self.fu_busy[ci].iter().position(|&b| b <= self.cycle) else {
                continue;
            };
            // Issue.
            let occupancy = self.window[i].occupancy;
            let latency = self.window[i].latency;
            let busy_for = if pool.pipelined {
                occupancy
            } else {
                latency.max(occupancy)
            };
            self.fu_busy[ci][unit] = self.cycle + busy_for;
            *self.result.fu_busy_cycles.entry(fu).or_insert(0) += busy_for;
            let e = &mut self.window[i];
            e.issued = true;
            e.complete_cycle = self.cycle + latency + occupancy - 1;
            issued_this_cycle += 1;
        }

        // Dispatch: in order, up to `width` renamed instructions into the
        // reorder buffer.
        let mut dispatched_this_cycle = 0;
        let mut stalled = false;
        while dispatched_this_cycle < cfg.width && !self.pending.is_empty() {
            if self.window.len() >= cfg.rob_size {
                stalled = true;
                break;
            }
            let e = self.pending.pop_front().expect("pending is non-empty");
            self.window.push_back(e);
            self.next_dispatch += 1;
            dispatched_this_cycle += 1;
        }
        if stalled {
            self.result.dispatch_stall_cycles += 1;
        }
        self.result.max_rob_occupancy = self.result.max_rob_occupancy.max(self.window.len());

        self.cycle += 1;
    }
}

impl TraceSink for ReferenceSim {
    fn retire(&mut self, entry: TraceEntry) {
        self.feed(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom_isa::prelude::*;
    use mom_isa::Instruction;

    #[test]
    fn reference_engine_still_simulates() {
        let mut sim = ReferenceSim::new(PipelineConfig::way(4));
        for i in 0..100u8 {
            sim.feed(TraceEntry {
                instr: Instruction::Alu {
                    op: AluOp::Add,
                    rd: i % 8,
                    ra: 20,
                    rb: 21,
                },
                vl: 1,
                taken: false,
                mem: None,
            });
        }
        let r = sim.finish();
        assert_eq!(r.instructions, 100);
        assert!(r.cycles >= 25, "width 4 lower bound");
    }
}
