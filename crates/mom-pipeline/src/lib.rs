//! # mom-pipeline — a Jinks-like out-of-order timing simulator
//!
//! The SC'99 MOM paper evaluates its ISAs on **Jinks**, an out-of-order
//! simulator "with capability of executing vector ISAs" whose basic
//! architecture "closely resembles that of the MIPS R10K, with the addition
//! of a MMX/MOM register file and dedicated functional units".  This crate
//! rebuilds that timing model as a **streaming consumer** of the dynamic
//! instruction stream:
//!
//! * incremental: [`PipelineSim`] consumes one retired [`TraceEntry`] at a
//!   time (`feed`) and reports the final [`SimResult`] on `finish` — and it
//!   implements [`mom_arch::TraceSink`], so functional and timing simulation
//!   fuse into a single bounded-memory pass over the program,
//! * scan-free: the per-cycle work is event-driven (rename-time dependence
//!   resolution, wakeup lists, a ready queue, a store-address queue, a
//!   free-unit calendar and idle-cycle fast-forwarding — see [`ooo`]); the
//!   original naive implementation is retained in [`reference`] as the
//!   executable specification the optimised engine must match
//!   cycle-for-cycle,
//! * fan-out: [`PipelineFanout`] drives several machine configurations (the
//!   paper's "way 1/2/4/8" sweep) from one functional run, decoding each
//!   entry once into a shared structure-of-arrays batch that every
//!   consumer sweeps in lockstep,
//! * sampled: [`SampledSim`] / [`SampledFanout`] estimate the cycle count
//!   from systematically sampled detailed intervals with cache-warming
//!   fast-forward in between, reporting a confidence interval in
//!   [`SimResult::sampled`] ([`sample`]),
//! * phase-aware: [`PipelineSim::into_parts`] hands back the warm
//!   [`CacheSim`] alongside the result and [`PipelineSim::resume`] starts
//!   the next phase of a multi-kernel application pipeline on it, so
//!   cross-kernel cache reuse is measurable while fixed-latency timing is
//!   untouched by phase chaining,
//! * a configurable fetch/issue/commit width, a reorder buffer, register
//!   renaming through last-writer tracking, and per-class functional units
//!   ([`config`]),
//! * vector/matrix instructions occupy their functional unit for
//!   `ceil(VL / lanes)` cycles, and the vector memory port is occupied for
//!   the bytes the traced access actually moved at `lanes` 64-bit words per
//!   cycle — the `Vl/N` cost model of the paper's Section 3,
//! * a configurable memory system ([`MemoryModel`]): either the paper's
//!   idealised fixed latency (1 / 12 / 50 cycles), or a simulated
//!   set-associative L1/L2 **cache hierarchy** with LRU replacement
//!   ([`cache`]) driven by the effective addresses the functional simulator
//!   records in the trace, charging each memory instruction its own
//!   hit/miss latency and reporting per-level hit/miss counters and MPKI
//!   through [`SimResult`],
//! * **memory ordering** at issue: a load may not bypass an older store
//!   whose data it might need — it waits unless both addresses are known
//!   and disjoint (no store-to-load forwarding),
//! * perfect branch prediction (the paper simulates kernels whose loop
//!   branches are strongly biased; the stream is already resolved).
//!
//! The output is a [`SimResult`] with the cycle count and the IPC / OPI /
//! operation statistics the paper's Tables 1–9 decompose speed-ups into.
//!
//! ## Example: one functional run, four machine widths
//!
//! ```
//! use mom_arch::{Machine, Memory};
//! use mom_isa::prelude::*;
//! use mom_pipeline::{PipelineConfig, PipelineFanout};
//!
//! // A tiny MOM program: load a 16x8 byte matrix and add it to itself.
//! let mut b = AsmBuilder::new(IsaKind::Mom);
//! b.li(1, 0x100);
//! b.li(2, 8);
//! b.set_vl_imm(16);
//! b.mom_load(0, 1, 2, ElemType::U8);
//! b.mom_op(PackedOp::Add(Overflow::Saturate), ElemType::U8, 1, 0, MomOperand::Mat(0));
//! b.mom_store(1, 1, 2, ElemType::U8);
//! let program = b.finish();
//!
//! // Stream the functional run straight into four timing consumers: the
//! // trace is never materialised, and the machine executes only once.
//! let mut machine = Machine::new(Memory::new(0x1000));
//! let mut fanout = PipelineFanout::new([1, 2, 4, 8].map(PipelineConfig::way));
//! machine.run_with_sink(&program, &mut fanout).unwrap();
//! let results = fanout.finish();
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.cycles > 0 && r.opi() > 1.0));
//! // Wider machines never run slower on the same stream.
//! assert!(results[3].cycles <= results[0].cycles);
//! ```
//!
//! For small, already-materialised traces (tests, quick experiments) the
//! batch wrapper remains:
//!
//! ```
//! use mom_arch::{Machine, Memory};
//! use mom_isa::prelude::*;
//! use mom_pipeline::{Pipeline, PipelineConfig};
//!
//! let mut b = AsmBuilder::new(IsaKind::Mom);
//! b.li(1, 0x100);
//! b.li(2, 8);
//! b.set_vl_imm(16);
//! b.mom_load(0, 1, 2, ElemType::U8);
//! let program = b.finish();
//! let trace = Machine::new(Memory::new(0x1000)).run(&program).unwrap();
//! let result = Pipeline::new(PipelineConfig::way(4)).simulate(&trace);
//! assert!(result.cycles > 0);
//! ```

#![warn(missing_docs)]

/// Version of the timing engine's *semantics*, mixed into every persistent
/// result-store key by `mom-bench`. Bump this whenever a change can alter
/// any `SimResult` for an unchanged trace and configuration (latency
/// fixes, occupancy rules, cache policy, sampling estimator, …) so stored
/// grid points from older engines are never served again. Pure
/// refactorings and performance work that keep results byte-identical do
/// not bump it.
pub const ENGINE_VERSION: u32 = 1;

pub mod cache;
pub mod config;
pub mod ooo;
pub mod reference;
pub mod sample;
pub mod stats;

pub use cache::{CacheConfig, CacheSim, CacheStats, HierarchyConfig};
pub use config::{
    FuPool, MemoryModel, ParseMemoryModelError, PipelineConfig, PipelineConfigBuilder,
};
pub use ooo::{timing_simulations, Pipeline, PipelineFanout, PipelineSim};
pub use reference::ReferenceSim;
pub use sample::{SampledFanout, SampledSim, SamplingConfig};
pub use stats::{SamplingEstimate, SimResult};

// Re-export the trace types most callers need alongside the pipeline.
pub use mom_arch::{Trace, TraceEntry, TraceSink};
