//! # mom-pipeline — a Jinks-like out-of-order timing simulator
//!
//! The SC'99 MOM paper evaluates its ISAs on **Jinks**, an out-of-order
//! simulator "with capability of executing vector ISAs" whose basic
//! architecture "closely resembles that of the MIPS R10K, with the addition
//! of a MMX/MOM register file and dedicated functional units".  This crate
//! rebuilds that timing model:
//!
//! * trace-driven: it replays the dynamic instruction [`Trace`] produced by
//!   the functional simulator in `mom-arch` (standing in for the paper's
//!   ATOM-instrumented binaries),
//! * a configurable fetch/issue/commit width (the paper's "way 1/2/4/8"
//!   machines), a reorder buffer, register renaming through last-writer
//!   tracking over the three register classes (integer, floating point,
//!   multimedia), and per-class functional units ([`config`]),
//! * vector/matrix instructions occupy their functional unit for
//!   `ceil(VL / lanes)` cycles and move `lanes` 64-bit words per cycle
//!   through the vector memory port, exactly the `Vl/N` cost model of the
//!   paper's Section 3,
//! * an idealised memory system: fixed latency (1 / 12 / 50 cycles in the
//!   paper's experiments), unlimited bandwidth behind the configured ports,
//! * perfect branch prediction (the paper simulates kernels whose loop
//!   branches are strongly biased; the trace is already resolved).
//!
//! The output is a [`SimResult`] with the cycle count and the IPC / OPI /
//! operation statistics the paper's Tables 1–9 decompose speed-ups into.
//!
//! ## Example
//!
//! ```
//! use mom_arch::{Machine, Memory};
//! use mom_isa::prelude::*;
//! use mom_pipeline::{Pipeline, PipelineConfig};
//!
//! // A tiny MOM program: load a 16x8 byte matrix and add it to itself.
//! let mut b = AsmBuilder::new(IsaKind::Mom);
//! b.li(1, 0x100);
//! b.li(2, 8);
//! b.set_vl_imm(16);
//! b.mom_load(0, 1, 2, ElemType::U8);
//! b.mom_op(PackedOp::Add(Overflow::Saturate), ElemType::U8, 1, 0, MomOperand::Mat(0));
//! b.mom_store(1, 1, 2, ElemType::U8);
//! let program = b.finish();
//!
//! let mut machine = Machine::new(Memory::new(0x1000));
//! let trace = machine.run(&program).unwrap();
//!
//! let config = PipelineConfig::way(4);
//! let result = Pipeline::new(config).simulate(&trace);
//! assert!(result.cycles > 0);
//! assert!(result.opi() > 1.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod ooo;
pub mod stats;

pub use config::{FuPool, MemoryModel, PipelineConfig};
pub use ooo::Pipeline;
pub use stats::SimResult;

// Re-export the trace types most callers need alongside the pipeline.
pub use mom_arch::{Trace, TraceEntry};
