//! SMARTS-style systematic sampling for the timing engine.
//!
//! A full-fidelity run pays the out-of-order engine for every instruction
//! of the stream.  Most of that work is redundant on the steady-state
//! streams the paper's experiments replay: the CPI of a kernel loop barely
//! moves between iterations.  [`SampledSim`] exploits that by alternating
//! two modes over the stream:
//!
//! * **detailed intervals** — `warmup + detailed` instructions are fed
//!   through a real [`PipelineSim`]; the first `warmup` instructions prime
//!   the window and scheduler and are excluded from measurement, the next
//!   `detailed` instructions contribute one CPI sample (measured as the
//!   difference of two drain probes, see
//!   [`PipelineSim::drained_cycle_count`]);
//! * **fast-forward spans** — the next `fastforward` instructions bypass
//!   the window and issue machinery entirely and only replay their memory
//!   accesses into the cache model, so the L1/L2 state a later interval
//!   observes is exactly what a full run would have left behind.
//!
//! The final cycle count is a **stratified** extrapolation: the
//! cold-start head of the stream (the first interval's warm-up, where the
//! resumed state is the true machine state) is counted exactly, and the
//! steady-state `mean CPI × body instructions` covers the rest.  The
//! per-interval spread is reported as a ~95% confidence interval in
//! [`SimResult::sampled`] (a Student-t interval widened by a conservative
//! relative floor for the systematic error the estimator cannot see).
//! Architectural counters — instructions, operations, media/memory mix,
//! cache hit/miss counters — are **exact**: every entry of the stream is
//! observed in one mode or the other.
//!
//! On periodic streams (one kernel invocation replayed many times — every
//! benchmark grid) the schedule should be
//! [aligned](SamplingConfig::aligned_to) to the invocation length first:
//! interval boundaries then always land on the same loop phase, so the
//! backlog terms of the two drain probes cancel exactly instead of
//! aliasing against the loop.
//!
//! Sampling is strictly opt-in: nothing in the full-fidelity path is
//! touched, and a degenerate stream shorter than one detailed interval is
//! reported exactly (zero-width interval).  [`SampledFanout`] is the
//! sampled counterpart of [`crate::PipelineFanout`] for configuration
//! sweeps.

use crate::cache::{CacheSim, CacheStats};
use crate::config::PipelineConfig;
use crate::ooo::{Pipeline, PipelineSim};
use crate::stats::{SamplingEstimate, SimResult};
use mom_arch::{Trace, TraceEntry, TraceSink};
use mom_isa::FuClass;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// The systematic-sampling schedule: how a sampled run alternates between
/// detailed simulation and cache-warming fast-forward.
///
/// The stream is consumed in periods of `warmup + detailed + fastforward`
/// instructions, starting with a detailed interval at the head of the
/// stream.  The default schedule keeps the period **prime** (1021) so a
/// raw, unaligned schedule cannot lock onto the loop period of a replayed
/// kernel invocation; consumers that know the invocation length (the
/// benchmark grids) should instead round the schedule onto whole
/// invocations with [`SamplingConfig::aligned_to`], which turns that
/// phase lock from a hazard into the measurement's foundation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Instructions measured in detail per interval.
    pub detailed: u64,
    /// Instructions fast-forwarded (cache model only) between intervals.
    pub fastforward: u64,
    /// Instructions simulated in detail before each measurement to prime
    /// the window and scheduler, excluded from the CPI sample.
    pub warmup: u64,
}

impl SamplingConfig {
    /// The default schedule: 200 measured + 150 warm-up instructions per
    /// interval, 671 fast-forwarded between intervals (a prime period of
    /// 1021, ~34% of the stream simulated in detail).
    ///
    /// The warm-up is sized to **refill the deepest default window** (the
    /// 8-wide machine's 128-entry reorder buffer) after a fast-forward
    /// span, so the measured instructions run at steady-state occupancy
    /// rather than on a ramping pipeline; a shorter warm-up measurably
    /// biases wide-machine CPI upward.
    pub const DEFAULT: SamplingConfig = SamplingConfig {
        detailed: 200,
        fastforward: 671,
        warmup: 150,
    };

    /// Validates the schedule: a measurement interval and a fast-forward
    /// span of at least one instruction each (a zero fast-forward is just
    /// full simulation at extra cost; ask for that directly instead).
    pub fn validate(&self) -> Result<(), String> {
        if self.detailed == 0 {
            return Err("sampling needs a detailed interval of at least one instruction".into());
        }
        if self.fastforward == 0 {
            return Err(
                "sampling needs a fast-forward span of at least one instruction \
                 (a zero span is full simulation; run the full engine instead)"
                    .into(),
            );
        }
        Ok(())
    }

    /// Length of one full sampling period in instructions.
    pub fn period(&self) -> u64 {
        self.warmup + self.detailed + self.fastforward
    }

    /// Rounds every span of the schedule **up to whole multiples of
    /// `unit` instructions** (an invocation length), so each interval
    /// boundary lands on the same phase of a periodic stream.
    ///
    /// On the benchmark grids a stream is one kernel invocation replayed
    /// many times.  Sampling such a stream with an arbitrary period puts
    /// interval boundaries at arbitrary loop phases, and the drain-probe
    /// measurement then picks up phase-dependent bias: the in-flight
    /// backlog differs between the warm-up boundary and the interval end,
    /// so their drain times do not cancel out of the subtraction.
    /// Aligning the schedule makes both probe points the *same* position
    /// in the periodic steady state — the backlog terms cancel exactly,
    /// every measurement covers whole invocations, and the warm-up
    /// replays complete invocations so cross-invocation dependence
    /// chains are rebuilt before measurement starts.
    ///
    /// The detailed span is additionally rounded up to an **even** number
    /// of invocations (at least two): replayed kernels commonly settle
    /// into a period-two steady state (consecutive invocations alternate
    /// between a fast and a slow phase as their in-flight work meshes),
    /// and a span covering whole oscillation cycles yields an unbiased
    /// sample no matter which phase the interval lands on.  A `unit` of
    /// zero or one (or an explicit zero warm-up) leaves the schedule
    /// unchanged.
    #[must_use]
    pub fn aligned_to(self, unit: u64) -> SamplingConfig {
        if unit <= 1 {
            return self;
        }
        let round_up = |v: u64| v.div_ceil(unit) * unit;
        SamplingConfig {
            detailed: self.detailed.div_ceil(unit).max(2).next_multiple_of(2) * unit,
            fastforward: round_up(self.fastforward),
            warmup: round_up(self.warmup),
        }
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig::DEFAULT
    }
}

impl fmt::Display for SamplingConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.detailed, self.fastforward, self.warmup)
    }
}

/// Error parsing a `detailed:fastforward:warmup` sampling schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSamplingConfigError(String);

impl fmt::Display for ParseSamplingConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid sampling schedule '{}': expected detailed:fastforward:warmup, \
             e.g. '{}'",
            self.0,
            SamplingConfig::DEFAULT
        )
    }
}

impl std::error::Error for ParseSamplingConfigError {}

impl FromStr for SamplingConfig {
    type Err = ParseSamplingConfigError;

    /// Parses `detailed:fastforward:warmup`, e.g. `200:671:150`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSamplingConfigError(s.to_string());
        let mut parts = s.split(':');
        let mut next = || -> Result<u64, ParseSamplingConfigError> {
            parts
                .next()
                .ok_or_else(err)?
                .trim()
                .parse()
                .map_err(|_| err())
        };
        let config = SamplingConfig {
            detailed: next()?,
            fastforward: next()?,
            warmup: next()?,
        };
        if parts.next().is_some() {
            return Err(err());
        }
        config.validate().map_err(|_| err())?;
        Ok(config)
    }
}

/// Student-t 97.5% quantiles for 1..=30 degrees of freedom (then ~normal).
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t_975(df: usize) -> f64 {
    if df == 0 {
        0.0
    } else if df <= T_975.len() {
        T_975[df - 1]
    } else {
        1.96
    }
}

/// Relative floor on the confidence-interval half-width: the drain-probe
/// estimator carries systematic error (interval boundaries drain the
/// pipeline; a resumed interval forgets in-flight state; the short paper
/// streams yield only a handful of intervals) that the per-interval
/// spread cannot see, so the reported interval is never narrower than
/// this fraction of the estimate.  Calibrated against the full kernel ×
/// ISA grids with the invocation-aligned default schedule: the worst
/// observed estimator error on any registered experiment is ~4.5%, so a
/// 10% floor keeps every confidence interval honest with ~2× margin (the
/// error-bound test in `mom-bench` re-verifies this on every run).
const SYSTEMATIC_FLOOR: f64 = 0.10;

/// Which mode the sampled consumer is currently in.
#[derive(Debug, Clone)]
enum Phase {
    /// Feeding a detailed interval through a real engine.
    Detailed {
        /// The timing engine of this interval (resumed on the warm cache).
        sim: Box<PipelineSim>,
        /// Entries fed into this interval so far.
        fed: u64,
        /// Drain-probe cycle count at the warm-up boundary; `Some(0)`
        /// immediately when the schedule has no warm-up.
        warm_cycles: Option<u64>,
    },
    /// Fast-forwarding: only the cache model observes the entries.
    FastForward {
        /// Entries left before the next detailed interval begins.
        left: u64,
    },
}

/// The sampled timing consumer: a drop-in alternative to [`PipelineSim`]
/// that estimates the cycle count from systematically sampled detailed
/// intervals (see the [module docs](crate::sample)).
///
/// Implements [`TraceSink`], so it can be attached to
/// `Machine::run_with_sink` or [`Trace::replay_into`] exactly like the
/// full-fidelity consumer; [`SampledSim::finish`] returns a [`SimResult`]
/// whose [`SimResult::sampled`] field reports the confidence interval.
#[derive(Debug, Clone)]
pub struct SampledSim {
    config: PipelineConfig,
    sampling: SamplingConfig,
    phase: Phase,
    /// The cache hierarchy between detailed intervals (inside the engine
    /// during one); `None` under a fixed-latency memory model.
    dcache: Option<CacheSim>,
    /// Exact architectural counters over the whole stream.
    instructions: u64,
    operations: u64,
    media_instructions: u64,
    memory_instructions: u64,
    /// Cache counters harvested from completed spans (the live tail stays
    /// in `dcache`/the engine until the next harvest).
    cache_acc: CacheStats,
    /// Per-interval CPI samples and their weights (measured instructions).
    samples: Vec<f64>,
    weights: Vec<u64>,
    /// Totals over the measured (post-warm-up) parts of all intervals.
    detailed_cycles: u64,
    detailed_instructions: u64,
    /// Secondary statistics accumulated over the detailed windows only.
    fu_busy: HashMap<FuClass, u64>,
    max_rob_occupancy: usize,
    dispatch_stall_cycles: u64,
    /// Entries consumed by fast-forward spans.
    ff_entries: u64,
    /// Completed detailed intervals.
    intervals_completed: usize,
    /// Exact cycles and instructions of the **cold-start head**: the first
    /// interval's warm-up runs at the true head of the stream (the resumed
    /// state *is* the real machine state there — empty window, cold
    /// cache), so its drain-probe cycle count is a measurement, not an
    /// artifact.  The estimator counts this stratum exactly and
    /// extrapolates the steady-state CPI only over the remaining
    /// instructions; without the split, a cache-cold first invocation is
    /// averaged away and the extrapolated total lands well under truth.
    head_cycles: u64,
    head_instructions: u64,
    /// Exact total cycle count, available while the whole stream so far
    /// has been simulated in detail (cleared by the first fast-forwarded
    /// entry): lets a stream shorter than one period report exact timing.
    exact_cycles: Option<u64>,
}

impl SampledSim {
    /// Creates a sampled consumer for the given machine configuration and
    /// sampling schedule.
    ///
    /// # Panics
    /// Panics if either configuration fails validation.
    pub fn new(config: PipelineConfig, sampling: SamplingConfig) -> Self {
        sampling.validate().expect("invalid sampling schedule");
        let sim = PipelineSim::new(config.clone());
        SampledSim {
            config,
            phase: Phase::Detailed {
                sim: Box::new(sim),
                fed: 0,
                warm_cycles: if sampling.warmup == 0 { Some(0) } else { None },
            },
            sampling,
            dcache: None,
            instructions: 0,
            operations: 0,
            media_instructions: 0,
            memory_instructions: 0,
            cache_acc: CacheStats::default(),
            samples: Vec::new(),
            weights: Vec::new(),
            detailed_cycles: 0,
            detailed_instructions: 0,
            fu_busy: HashMap::new(),
            max_rob_occupancy: 0,
            dispatch_stall_cycles: 0,
            ff_entries: 0,
            intervals_completed: 0,
            head_cycles: 0,
            head_instructions: 0,
            exact_cycles: None,
        }
    }

    /// The machine configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The sampling schedule in use.
    pub fn sampling(&self) -> SamplingConfig {
        self.sampling
    }

    /// Consumes the next retired instruction of the stream.
    pub fn feed(&mut self, entry: TraceEntry) {
        self.instructions += 1;
        self.operations += entry.ops();
        if entry.instr.is_media() {
            self.media_instructions += 1;
        }
        if entry.instr.is_memory() {
            self.memory_instructions += 1;
        }
        let interval = self.sampling.warmup + self.sampling.detailed;
        match &mut self.phase {
            Phase::Detailed {
                sim,
                fed,
                warm_cycles,
            } => {
                sim.feed(entry);
                *fed += 1;
                if warm_cycles.is_none() && *fed == self.sampling.warmup {
                    *warm_cycles = Some(sim.drained_cycle_count());
                }
                if *fed < interval {
                    return;
                }
            }
            Phase::FastForward { left } => {
                self.ff_entries += 1;
                self.exact_cycles = None;
                if let Some(cache) = self.dcache.as_mut() {
                    Self::warm_cache(cache, &entry);
                }
                *left -= 1;
                if *left > 0 {
                    return;
                }
            }
        }
        self.advance_phase();
    }

    /// Replays one entry's memory traffic into the cache model — the same
    /// charging rule as the detailed path (only memory-class instructions
    /// with traced addresses touch the hierarchy; metadata-free entries
    /// are assumed to hit L1 and leave no trace).
    fn warm_cache(cache: &mut CacheSim, entry: &TraceEntry) {
        if matches!(entry.instr.fu_class(), FuClass::Mem | FuClass::VecMem) {
            if let Some(access) = entry.mem.as_ref() {
                cache.access(access);
            }
        }
    }

    /// Crosses the phase boundary the last fed entry completed: harvests a
    /// finished detailed interval into the CPI samples and switches to
    /// fast-forward, or ends an exhausted fast-forward span by resuming a
    /// fresh engine on the warm cache.
    fn advance_phase(&mut self) {
        let next_ff = Phase::FastForward {
            left: self.sampling.fastforward,
        };
        match std::mem::replace(&mut self.phase, next_ff) {
            Phase::Detailed {
                sim, warm_cycles, ..
            } => {
                let (result, cache) = sim.into_parts();
                self.dcache = cache;
                self.intervals_completed += 1;
                if self.intervals_completed == 1 && self.ff_entries == 0 {
                    // Nothing has been skipped yet: the interval's engine
                    // saw the entire stream so far, and its drained cycle
                    // count is exact, not an extrapolation.
                    self.exact_cycles = Some(result.cycles);
                }
                let warm = warm_cycles.unwrap_or(0);
                if self.intervals_completed == 1 {
                    // The first warm-up is the genuine cold-start head of
                    // the stream: record it as an exactly-measured stratum.
                    self.head_cycles = warm;
                    self.head_instructions = self.sampling.warmup;
                }
                let measured = self.sampling.detailed;
                let cycles = result.cycles - warm;
                self.samples.push(cycles as f64 / measured as f64);
                self.weights.push(measured);
                self.detailed_cycles += cycles;
                self.detailed_instructions += measured;
                self.harvest_window_stats(&result);
            }
            Phase::FastForward { .. } => {
                if let Some(cache) = &self.dcache {
                    self.cache_acc.merge(&cache.stats);
                }
                let sim = PipelineSim::resume(self.config.clone(), self.dcache.take());
                self.phase = Phase::Detailed {
                    sim: Box::new(sim),
                    fed: 0,
                    warm_cycles: if self.sampling.warmup == 0 {
                        Some(0)
                    } else {
                        None
                    },
                };
            }
        }
    }

    /// Accumulates the window statistics of one detailed interval (cache
    /// counters are harvested separately, from the live hierarchy, so the
    /// fast-forward accesses are not double-counted).
    fn harvest_window_stats(&mut self, result: &SimResult) {
        for (&class, &busy) in &result.fu_busy_cycles {
            *self.fu_busy.entry(class).or_insert(0) += busy;
        }
        self.max_rob_occupancy = self.max_rob_occupancy.max(result.max_rob_occupancy);
        self.dispatch_stall_cycles += result.dispatch_stall_cycles;
    }

    /// Ends the stream and returns the estimated [`SimResult`], with the
    /// confidence interval in [`SimResult::sampled`].
    pub fn finish(mut self) -> SimResult {
        // Close the open phase: a partial detailed interval still
        // contributes a (shorter, down-weighted) CPI sample.
        let placeholder = Phase::FastForward { left: 1 };
        match std::mem::replace(&mut self.phase, placeholder) {
            Phase::Detailed {
                sim,
                fed,
                warm_cycles,
            } => {
                let (result, cache) = sim.into_parts();
                self.dcache = cache;
                if self.intervals_completed == 0 && self.ff_entries == 0 {
                    self.exact_cycles = Some(result.cycles);
                }
                if let Some(warm) = warm_cycles {
                    let measured = fed.saturating_sub(self.sampling.warmup);
                    if measured > 0 {
                        let cycles = result.cycles - warm;
                        self.samples.push(cycles as f64 / measured as f64);
                        self.weights.push(measured);
                        self.detailed_cycles += cycles;
                        self.detailed_instructions += measured;
                    }
                }
                self.harvest_window_stats(&result);
            }
            Phase::FastForward { .. } => {}
        }
        if let Some(cache) = &self.dcache {
            self.cache_acc.merge(&cache.stats);
        }

        let total = self.instructions;
        let (cycles, estimate) = if let Some(exact) = self.exact_cycles {
            // The whole stream went through one detailed engine: report it
            // exactly, with a zero-width interval.
            let cpi = if total == 0 {
                0.0
            } else {
                exact as f64 / total as f64
            };
            (
                exact,
                SamplingEstimate {
                    intervals: self.samples.len(),
                    detailed_instructions: total,
                    cpi_mean: cpi,
                    cpi_stddev: 0.0,
                    half_width_cycles: 0.0,
                },
            )
        } else {
            // Stratified ratio estimator: the cold-start head (the first
            // interval's warm-up) is counted exactly, and the steady-state
            // CPI — total measured cycles over total measured instructions,
            // equivalently the weighted mean of the per-interval CPIs — is
            // extrapolated over the remaining (body) instructions only.
            debug_assert!(
                self.detailed_instructions > 0,
                "a non-exact sampled run must have measured at least one interval"
            );
            let body = total - self.head_instructions;
            let mean = self.detailed_cycles as f64 / self.detailed_instructions.max(1) as f64;
            let n = self.samples.len();
            let stddev = if n >= 2 {
                let weight_sum = self.weights.iter().sum::<u64>() as f64;
                let variance = self
                    .samples
                    .iter()
                    .zip(&self.weights)
                    .map(|(&s, &w)| (w as f64 / weight_sum) * (s - mean) * (s - mean))
                    .sum::<f64>()
                    * n as f64
                    / (n - 1) as f64;
                variance.sqrt()
            } else {
                0.0
            };
            let student_t = t_975(n.saturating_sub(1)) * stddev / (n as f64).sqrt();
            let half_width_cpi = student_t.max(SYSTEMATIC_FLOOR * mean);
            (
                self.head_cycles + (mean * body as f64).round() as u64,
                SamplingEstimate {
                    intervals: n,
                    detailed_instructions: self.detailed_instructions,
                    cpi_mean: mean,
                    cpi_stddev: stddev,
                    half_width_cycles: half_width_cpi * body as f64,
                },
            )
        };

        SimResult {
            cycles,
            instructions: self.instructions,
            operations: self.operations,
            media_instructions: self.media_instructions,
            memory_instructions: self.memory_instructions,
            fu_busy_cycles: self.fu_busy,
            max_rob_occupancy: self.max_rob_occupancy,
            dispatch_stall_cycles: self.dispatch_stall_cycles,
            cache: self.cache_acc,
            sampled: Some(estimate),
        }
    }
}

impl TraceSink for SampledSim {
    fn retire(&mut self, entry: TraceEntry) {
        self.feed(entry);
    }

    /// The fast-forward hook: a run that fits entirely inside the current
    /// fast-forward span is consumed in one tight loop over the slice —
    /// counters and cache warming only, no per-entry state-machine checks.
    /// (Strictly `>`: the entry landing on the span boundary must restart
    /// a detailed interval, so boundary-crossing runs take the entry loop.)
    fn retire_many(&mut self, entries: &[TraceEntry]) {
        if let Phase::FastForward { left } = &mut self.phase {
            if *left > entries.len() as u64 {
                *left -= entries.len() as u64;
                self.ff_entries += entries.len() as u64;
                self.exact_cycles = None;
                for entry in entries {
                    self.instructions += 1;
                    self.operations += entry.ops();
                    if entry.instr.is_media() {
                        self.media_instructions += 1;
                    }
                    if entry.instr.is_memory() {
                        self.memory_instructions += 1;
                    }
                    if let Some(cache) = self.dcache.as_mut() {
                        Self::warm_cache(cache, entry);
                    }
                }
                return;
            }
        }
        for entry in entries {
            self.feed(*entry);
        }
    }
}

/// The sampled counterpart of [`crate::PipelineFanout`]: one instruction
/// stream drives a sampled consumer per machine configuration.  All
/// consumers share the schedule, so their detailed intervals cover the
/// same stream positions and the per-configuration estimates are directly
/// comparable.
#[derive(Debug, Clone, Default)]
pub struct SampledFanout {
    sims: Vec<SampledSim>,
}

impl SampledFanout {
    /// Creates a sampled fan-out over the given configurations, in order,
    /// all on the same sampling schedule.
    pub fn new<I: IntoIterator<Item = PipelineConfig>>(
        configs: I,
        sampling: SamplingConfig,
    ) -> Self {
        SampledFanout {
            sims: configs
                .into_iter()
                .map(|config| SampledSim::new(config, sampling))
                .collect(),
        }
    }

    /// Adds one more consumer on its own schedule.
    pub fn push(&mut self, config: PipelineConfig, sampling: SamplingConfig) {
        self.sims.push(SampledSim::new(config, sampling));
    }

    /// Number of consumers.
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the fan-out has no consumers.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Feeds one entry to every consumer.
    pub fn feed(&mut self, entry: TraceEntry) {
        for sim in &mut self.sims {
            sim.feed(entry);
        }
    }

    /// Finishes every consumer, returning one estimated [`SimResult`] per
    /// configuration, in construction order.
    pub fn finish(self) -> Vec<SimResult> {
        self.sims.into_iter().map(SampledSim::finish).collect()
    }
}

impl TraceSink for SampledFanout {
    fn retire(&mut self, entry: TraceEntry) {
        self.feed(entry);
    }

    fn retire_many(&mut self, entries: &[TraceEntry]) {
        for sim in &mut self.sims {
            sim.retire_many(entries);
        }
    }
}

impl Pipeline {
    /// Replays a materialised trace through a sampled consumer — the
    /// sampled counterpart of [`Pipeline::simulate`].
    pub fn simulate_sampled(&self, trace: &Trace, sampling: SamplingConfig) -> SimResult {
        let mut sim = SampledSim::new(self.config().clone(), sampling);
        trace.replay_into(1, &mut sim);
        sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryModel;
    use mom_isa::prelude::*;
    use mom_isa::Instruction;

    fn entry(instr: Instruction) -> TraceEntry {
        TraceEntry {
            instr,
            vl: 0,
            taken: false,
            mem: None,
        }
    }

    fn add(rd: u8, ra: u8, rb: u8) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            rd,
            ra,
            rb,
        }
    }

    /// A long dependence-free stream with a deterministic mix.
    fn stream(len: usize) -> Trace {
        (0..len)
            .map(|i| {
                entry(add(
                    (i % 23) as u8 + 1,
                    (i % 7) as u8 + 1,
                    (i % 5) as u8 + 1,
                ))
            })
            .collect()
    }

    #[test]
    fn schedule_parses_and_validates() {
        let parsed: SamplingConfig = "200:671:150".parse().unwrap();
        assert_eq!(parsed, SamplingConfig::DEFAULT);
        assert_eq!(parsed.to_string(), "200:671:150");
        assert_eq!(parsed.period(), 1021);
        assert!("200:671".parse::<SamplingConfig>().is_err());
        assert!("0:671:150".parse::<SamplingConfig>().is_err());
        assert!("200:0:150".parse::<SamplingConfig>().is_err());
        assert!("a:b:c".parse::<SamplingConfig>().is_err());
        assert!(SamplingConfig::DEFAULT.validate().is_ok());
    }

    #[test]
    fn aligned_schedules_cover_whole_even_invocations() {
        let aligned = SamplingConfig::DEFAULT.aligned_to(167);
        assert_eq!(
            aligned,
            SamplingConfig {
                detailed: 334,
                fastforward: 835,
                warmup: 167,
            }
        );
        // The detailed span always covers an even number (>= 2) of
        // invocations, so it averages over a period-two steady state.
        let tiny = SamplingConfig {
            detailed: 10,
            fastforward: 10,
            warmup: 0,
        }
        .aligned_to(16);
        assert_eq!(tiny.detailed, 32);
        assert_eq!(tiny.fastforward, 16);
        // An explicit zero warm-up stays zero; unit <= 1 is a no-op.
        assert_eq!(tiny.warmup, 0);
        assert_eq!(
            SamplingConfig::DEFAULT.aligned_to(1),
            SamplingConfig::DEFAULT
        );
        assert_eq!(
            SamplingConfig::DEFAULT.aligned_to(0),
            SamplingConfig::DEFAULT
        );
    }

    #[test]
    fn short_stream_is_exact() {
        // Shorter than one detailed interval: the estimate must equal the
        // full simulation exactly, with a zero-width interval.
        let trace = stream(100);
        let pipeline = Pipeline::new(PipelineConfig::way(4));
        let full = pipeline.simulate(&trace);
        let sampled = pipeline.simulate_sampled(&trace, SamplingConfig::DEFAULT);
        assert_eq!(sampled.cycles, full.cycles);
        assert_eq!(sampled.instructions, full.instructions);
        assert_eq!(sampled.operations, full.operations);
        let estimate = sampled.sampled.expect("sampled result carries estimate");
        assert_eq!(estimate.half_width_cycles, 0.0);
        assert!(estimate.covers(sampled.cycles, full.cycles));
    }

    #[test]
    fn empty_stream_is_exact_zero() {
        let sampled = SampledSim::new(PipelineConfig::way(4), SamplingConfig::DEFAULT).finish();
        assert_eq!(sampled.cycles, 0);
        assert_eq!(sampled.instructions, 0);
        assert!(sampled.sampled.is_some());
    }

    #[test]
    fn architectural_counters_are_exact_and_estimate_covers_full() {
        let trace = stream(997);
        for &latency in &[1u64, 12, 50] {
            let config = PipelineConfig::way_with_memory(4, MemoryModel::Fixed { latency });
            let pipeline = Pipeline::new(config);
            let mut full = pipeline.simulate(&trace);
            // The stream is replayed several times to cross many intervals.
            let mut sink = SampledSim::new(pipeline.config().clone(), SamplingConfig::DEFAULT);
            trace.replay_into(8, &mut sink);
            let sampled = sink.finish();
            // Exact architectural counters: 8 replications of the trace.
            assert_eq!(sampled.instructions, 8 * full.instructions);
            assert_eq!(sampled.operations, 8 * full.operations);
            assert_eq!(sampled.media_instructions, 8 * full.media_instructions);
            assert_eq!(sampled.memory_instructions, 8 * full.memory_instructions);
            // The full run of the same 8-fold stream, for the cycle bound.
            let mut full_sink = PipelineSim::new(pipeline.config().clone());
            trace.replay_into(8, &mut full_sink);
            full = full_sink.finish();
            let estimate = sampled.sampled.as_ref().expect("estimate present");
            assert!(estimate.intervals >= 2, "several intervals were measured");
            assert!(
                estimate.covers(sampled.cycles, full.cycles),
                "estimate {} ± {} must cover full {}",
                sampled.cycles,
                estimate.half_width_cycles,
                full.cycles
            );
        }
    }

    #[test]
    fn fast_forward_keeps_cache_state_exact() {
        use mom_arch::MemAccess;
        // A strided load stream under the cache hierarchy: the sampled
        // run's cache counters must equal the full run's exactly, because
        // every access is replayed into the hierarchy in both modes.
        let mut entries = Vec::new();
        for i in 0..4000u64 {
            let addr = (i * 96) % 0x40000;
            entries.push(TraceEntry {
                instr: Instruction::Load {
                    size: MemSize::Quad,
                    signed: false,
                    rd: ((i % 20) + 1) as u8,
                    base: 29,
                    offset: 0,
                },
                vl: 0,
                taken: false,
                mem: Some(MemAccess::unit(addr, 8, false)),
            });
            entries.push(entry(add(((i % 13) + 1) as u8, 2, 3)));
        }
        let trace: Trace = entries.into_iter().collect();
        let config = PipelineConfig::way_with_memory(4, MemoryModel::CACHE);
        let pipeline = Pipeline::new(config);
        let full = pipeline.simulate(&trace);
        let sampled = pipeline.simulate_sampled(&trace, SamplingConfig::DEFAULT);
        assert_eq!(sampled.cache, full.cache, "cache counters must be exact");
        let estimate = sampled.sampled.as_ref().expect("estimate present");
        assert!(
            estimate.covers(sampled.cycles, full.cycles),
            "estimate {} ± {} must cover full {}",
            sampled.cycles,
            estimate.half_width_cycles,
            full.cycles
        );
    }

    #[test]
    fn retire_many_fast_path_matches_per_entry_feeding() {
        let trace = stream(131); // smaller than a fast-forward span
        let config = PipelineConfig::way(2);
        let mut by_slice = SampledSim::new(config.clone(), SamplingConfig::DEFAULT);
        trace.replay_into(40, &mut by_slice);
        let mut by_entry = SampledSim::new(config, SamplingConfig::DEFAULT);
        for _ in 0..40 {
            for e in trace.iter() {
                by_entry.feed(*e);
            }
        }
        assert_eq!(by_slice.finish(), by_entry.finish());
    }

    #[test]
    fn sampled_fanout_matches_individual_sampled_sims() {
        let trace = stream(509);
        let configs: Vec<_> = [1, 2, 4, 8].map(PipelineConfig::way).into();
        let mut fanout = SampledFanout::new(configs.iter().cloned(), SamplingConfig::DEFAULT);
        trace.replay_into(6, &mut fanout);
        let results = fanout.finish();
        for (config, expected) in configs.into_iter().zip(results) {
            let mut single = SampledSim::new(config, SamplingConfig::DEFAULT);
            trace.replay_into(6, &mut single);
            assert_eq!(single.finish(), expected);
        }
    }
}
