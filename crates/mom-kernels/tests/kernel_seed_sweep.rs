//! Randomised cross-ISA verification: for random workload seeds, every ISA
//! variant of every kernel must agree bit-for-bit with the golden scalar
//! reference (and therefore with each other).

use mom_isa::IsaKind;
use mom_kernels::{verify_kernel, KernelId};
use proptest::prelude::*;

proptest! {
    // Each case verifies 9 kernels x 4 ISAs, so a handful of cases already
    // covers a lot of ground; keep the count moderate for debug-mode runs.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn all_kernels_all_isas_match_reference_for_random_seeds(seed in any::<u64>()) {
        for kernel in KernelId::ALL {
            for isa in IsaKind::ALL {
                if let Err(e) = verify_kernel(kernel, isa, seed) {
                    prop_assert!(false, "{kernel}/{isa} seed {seed}: {e}");
                }
            }
        }
    }

    #[test]
    fn kernel_traces_are_seed_independent_in_length(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        // The dynamic instruction count of a kernel depends only on the
        // kernel shape, not on the data values (there is no data-dependent
        // control flow in these kernels except the ltppar argmax updates,
        // which are branch-free conditional moves).
        for kernel in KernelId::ALL {
            for isa in IsaKind::ALL {
                let a = mom_kernels::run_kernel(kernel, isa, seed_a, 1).unwrap().trace.len();
                let b = mom_kernels::run_kernel(kernel, isa, seed_b, 1).unwrap().trace.len();
                prop_assert_eq!(a, b, "{}/{}: {} vs {}", kernel, isa, a, b);
            }
        }
    }
}

/// The steady-state replay in `mom-bench` (and `KernelRun::replay_into`)
/// rests on every iteration of a kernel being the *identical* instruction
/// stream.  Guard that assumption for every kernel and ISA: two back-to-back
/// invocations on one machine must retire entry-for-entry equal traces.
#[test]
fn consecutive_iterations_retire_identical_streams() {
    use mom_arch::{Machine, Memory, Trace};

    for kernel in KernelId::ALL {
        for isa in IsaKind::ALL {
            let spec = kernel.spec();
            let program = spec.program(isa);
            let mut machine = Machine::new(Memory::new(mom_kernels::layout::MEMORY_SIZE));
            spec.prepare(machine.memory_mut(), 17);
            let mut first = Trace::new();
            machine
                .run_with_sink(&program, &mut first)
                .unwrap_or_else(|e| panic!("{kernel}/{isa}: {e}"));
            let mut second = Trace::new();
            machine
                .run_with_sink(&program, &mut second)
                .unwrap_or_else(|e| panic!("{kernel}/{isa}: {e}"));
            assert!(
                first.entries() == second.entries(),
                "{kernel}/{isa}: iteration 2 diverges from iteration 1 at entry {}",
                first
                    .entries()
                    .iter()
                    .zip(second.entries())
                    .position(|(a, b)| a != b)
                    .unwrap_or(first.len().min(second.len()))
            );
        }
    }
}
