//! Randomised cross-ISA verification: for random workload seeds, every ISA
//! variant of every kernel must agree bit-for-bit with the golden scalar
//! reference (and therefore with each other).

use mom_isa::IsaKind;
use mom_kernels::{verify_kernel, KernelId};
use proptest::prelude::*;

proptest! {
    // Each case verifies 9 kernels x 4 ISAs, so a handful of cases already
    // covers a lot of ground; keep the count moderate for debug-mode runs.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn all_kernels_all_isas_match_reference_for_random_seeds(seed in any::<u64>()) {
        for kernel in KernelId::ALL {
            for isa in IsaKind::ALL {
                if let Err(e) = verify_kernel(kernel, isa, seed) {
                    prop_assert!(false, "{kernel}/{isa} seed {seed}: {e}");
                }
            }
        }
    }

    #[test]
    fn kernel_traces_are_seed_independent_in_length(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        // The dynamic instruction count of a kernel depends only on the
        // kernel shape, not on the data values (there is no data-dependent
        // control flow in these kernels except the ltppar argmax updates,
        // which are branch-free conditional moves).
        for kernel in KernelId::ALL {
            for isa in IsaKind::ALL {
                let a = mom_kernels::run_kernel(kernel, isa, seed_a, 1).trace.len();
                let b = mom_kernels::run_kernel(kernel, isa, seed_b, 1).trace.len();
                prop_assert_eq!(a, b, "{}/{}: {} vs {}", kernel, isa, a, b);
            }
        }
    }
}
