//! The kernel harness: preparing workloads, running the functional
//! simulator, verifying outputs and streaming traces to the timing
//! simulator.
//!
//! The harness is built around the streaming architecture of `mom-arch`:
//! [`run_kernel_with_sink`] drives every iteration of a kernel straight into
//! a [`TraceSink`] (statistics fold, timing simulator, fan-out — anything),
//! so peak memory is independent of the iteration count.  [`run_kernel`]
//! wraps it for callers that want a materialised single-invocation [`Trace`]
//! plus whole-run statistics.

use crate::layout::MEMORY_SIZE;
use crate::KernelId;
use mom_arch::{ExecError, Machine, Memory, Trace, TraceSink, TraceStats};
use mom_isa::{IsaKind, Program};

/// The interface every kernel implements: workload preparation, program
/// generation per ISA, and output verification against the golden
/// reference.
pub trait KernelSpec {
    /// Which kernel this is.
    fn id(&self) -> KernelId;

    /// Loads the kernel's workload (inputs and any constant tables) into the
    /// simulated memory, at the addresses defined in [`crate::layout`].
    fn prepare(&self, mem: &mut Memory, seed: u64);

    /// Builds the program performing one kernel invocation for the given
    /// ISA. The program must leave its results at the layout's output
    /// addresses.
    fn program(&self, isa: IsaKind) -> Program;

    /// Verifies the output region of `mem` against the golden Rust reference
    /// for the same `seed`. Returns the first mismatching element.
    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch>;
}

/// The first mismatching element of a failed verification: which output
/// buffer, which element, and the expected versus simulated value — kept
/// structured so multi-phase application failures stay attributable down to
/// the offending element instead of collapsing into a string early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Name of the output buffer that mismatched (e.g. `"idct output"`).
    pub buffer: String,
    /// Element index within that buffer.
    pub index: usize,
    /// The reference value, rendered with `Debug`.
    pub expected: String,
    /// The value the simulator produced, rendered with `Debug`.
    pub got: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: expected {}, got {}",
            self.buffer, self.index, self.expected, self.got
        )
    }
}

/// Ways running a kernel on the harness can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The generated program failed static validation.
    InvalidProgram {
        /// Kernel being run.
        kernel: KernelId,
        /// ISA of the generated program.
        isa: IsaKind,
        /// The validator's message.
        detail: String,
    },
    /// The functional simulator faulted.
    Exec {
        /// Kernel being run.
        kernel: KernelId,
        /// ISA of the generated program.
        isa: IsaKind,
        /// Iteration that faulted (0-based).
        iteration: usize,
        /// The underlying execution error.
        source: ExecError,
    },
    /// An iteration's output did not match the golden reference.
    Mismatch {
        /// Kernel being run.
        kernel: KernelId,
        /// ISA of the generated program.
        isa: IsaKind,
        /// Iteration whose output mismatched (0-based).
        iteration: usize,
        /// The first mismatching element (buffer, index, expected, got).
        mismatch: Mismatch,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::InvalidProgram {
                kernel,
                isa,
                detail,
            } => {
                write!(f, "{kernel}/{isa}: invalid program: {detail}")
            }
            KernelError::Exec {
                kernel,
                isa,
                iteration,
                source,
            } => write!(
                f,
                "{kernel}/{isa}: execution failed at iteration {iteration}: {source}"
            ),
            KernelError::Mismatch {
                kernel,
                isa,
                iteration,
                mismatch,
            } => write!(
                f,
                "{kernel}/{isa}: output mismatch at iteration {iteration}: {mismatch}"
            ),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Exec { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The outcome of running a kernel functionally.
///
/// The materialised [`trace`](KernelRun::trace) covers exactly **one**
/// invocation — iterations of a kernel are identical instruction streams
/// (the workloads have no data-dependent control flow), so keeping one copy
/// bounds memory no matter how many iterations ran.  The
/// [`stats`](KernelRun::stats) cover the **whole run** (every iteration,
/// accumulated as the stream was produced).
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Which kernel ran.
    pub kernel: KernelId,
    /// Which ISA the program used.
    pub isa: IsaKind,
    /// The dynamic trace of a single invocation.
    pub trace: Trace,
    /// How many invocations the run performed (and the stats cover).
    pub invocations: usize,
    /// Trace statistics of the whole run (instructions, operations, F, VLx,
    /// VLy over all invocations).
    pub stats: TraceStats,
}

impl KernelRun {
    /// Replays the whole run — the single-invocation trace repeated
    /// [`invocations`](KernelRun::invocations) times — into a sink, by
    /// reference (see [`Trace::replay_into`]: one `Copy` per retired entry,
    /// no re-collection of the trace per iteration).
    pub fn replay_into<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        self.trace.replay_into(self.invocations, sink);
    }
}

/// Runs `iterations` back-to-back invocations of a kernel on the functional
/// simulator, streaming every retired instruction into `sink` and verifying
/// **every** iteration's output against the golden reference (the kernels
/// overwrite their output region each invocation, so each iteration is
/// checked deterministically against the same expected bytes).
///
/// Running the kernel several times mirrors the paper's methodology of
/// simulating each kernel "a certain number of times in a loop" so that the
/// steady-state behaviour dominates.  Returns the statistics of the whole
/// run; peak memory is bounded by the sink, not by `iterations`.
pub fn run_kernel_with_sink<S: TraceSink + ?Sized>(
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
    iterations: usize,
    sink: &mut S,
) -> Result<TraceStats, KernelError> {
    let mut machine = app_machine();
    run_phase_with_sink(&mut machine, kernel, isa, seed, iterations, sink)
}

/// Creates the 1 MiB machine kernels (and multi-kernel application
/// pipelines) execute in, with all registers zeroed.
pub fn app_machine() -> Machine {
    Machine::new(Memory::new(MEMORY_SIZE))
}

/// Runs one kernel **phase** — `iterations` back-to-back invocations of
/// `kernel` — on an *existing* machine, streaming every retired instruction
/// into `sink` and verifying every iteration against the golden reference.
///
/// Unlike [`run_kernel_with_sink`], which builds a fresh machine, the
/// caller's machine (memory and register state) persists across calls.
/// This is the building block of whole-application pipelines: consecutive
/// phases (`idct → addblock → comp → …`) share one address space, so a
/// timing consumer that keeps its cache hierarchy across phase boundaries
/// (see `PipelineSim::resume` in `mom-pipeline`) observes cross-kernel
/// cache reuse.  The phase loads its own workload into the shared memory
/// first (kernels address the fixed [`crate::layout`] regions), and every
/// kernel program initialises the registers it reads, so phase order cannot
/// change functional results — only memory-system behaviour.
pub fn run_phase_with_sink<S: TraceSink + ?Sized>(
    machine: &mut Machine,
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
    iterations: usize,
    sink: &mut S,
) -> Result<TraceStats, KernelError> {
    assert!(iterations >= 1, "at least one iteration is required");
    let (spec, program) = prepare_phase(machine, kernel, isa, seed)?;
    let mut stats = TraceStats::default();
    for iteration in 0..iterations {
        let mut tee = (&mut stats, &mut *sink);
        run_one_iteration(
            &*spec, &program, machine, kernel, isa, seed, iteration, &mut tee,
        )?;
    }
    Ok(stats)
}

/// Runs `iterations` invocations of a kernel, materialising the trace of the
/// **first** invocation only and accumulating statistics over all of them —
/// so peak memory no longer grows with `iterations`.
///
/// This is the convenience wrapper over [`run_kernel_with_sink`]; use the
/// sink form directly to attach a timing simulator (or any other consumer)
/// without materialising anything.
pub fn run_kernel(
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
    iterations: usize,
) -> Result<KernelRun, KernelError> {
    assert!(iterations >= 1, "at least one iteration is required");
    let (spec, program, mut machine) = setup(kernel, isa, seed)?;
    let mut stats = TraceStats::default();
    let mut trace = Trace::new();
    for iteration in 0..iterations {
        if iteration == 0 {
            let mut tee = (&mut stats, &mut trace);
            run_one_iteration(
                &*spec,
                &program,
                &mut machine,
                kernel,
                isa,
                seed,
                iteration,
                &mut tee,
            )?;
        } else {
            run_one_iteration(
                &*spec,
                &program,
                &mut machine,
                kernel,
                isa,
                seed,
                iteration,
                &mut stats,
            )?;
        }
    }
    Ok(KernelRun {
        kernel,
        isa,
        trace,
        invocations: iterations,
        stats,
    })
}

/// Validates the kernel's program for `isa` and prepares a fresh machine
/// with the seeded workload loaded.
fn setup(
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
) -> Result<(Box<dyn KernelSpec>, Program, Machine), KernelError> {
    let mut machine = app_machine();
    let (spec, program) = prepare_phase(&mut machine, kernel, isa, seed)?;
    Ok((spec, program, machine))
}

/// Validates the kernel's program for `isa` and loads the seeded workload
/// into an existing machine — the shared front half of [`setup`] and
/// [`run_phase_with_sink`].
fn prepare_phase(
    machine: &mut Machine,
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
) -> Result<(Box<dyn KernelSpec>, Program), KernelError> {
    let spec = kernel.spec();
    let program = spec.program(isa);
    program
        .validate()
        .map_err(|detail| KernelError::InvalidProgram {
            kernel,
            isa,
            detail,
        })?;
    spec.prepare(machine.memory_mut(), seed);
    Ok((spec, program))
}

/// Process-wide count of functional kernel invocations (each one a full
/// execution of a kernel program on the functional simulator plus its
/// golden-reference verification), registered in the `mom-obs` metrics
/// registry as `momsim_functional_executions_total`. The
/// incremental-sweep tests assert this stays flat across a warm sweep:
/// traces served from the artifact store must not execute anything.
fn functional_executions_counter() -> &'static mom_obs::Counter {
    static COUNTER: std::sync::OnceLock<mom_obs::Counter> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| {
        mom_obs::counter(
            "momsim_functional_executions_total",
            "Functional kernel invocations (execution + golden-reference verification).",
        )
    })
}

/// The number of functional kernel invocations executed by this process so
/// far.
pub fn functional_executions() -> u64 {
    functional_executions_counter().get()
}

/// Executes one kernel invocation into `sink` and verifies its output.
#[allow(clippy::too_many_arguments)]
fn run_one_iteration<S: TraceSink + ?Sized>(
    spec: &dyn KernelSpec,
    program: &Program,
    machine: &mut Machine,
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
    iteration: usize,
    sink: &mut S,
) -> Result<(), KernelError> {
    functional_executions_counter().inc();
    machine
        .run_with_sink(program, sink)
        .map_err(|source| KernelError::Exec {
            kernel,
            isa,
            iteration,
            source,
        })?;
    spec.verify(machine.memory(), seed)
        .map_err(|mismatch| KernelError::Mismatch {
            kernel,
            isa,
            iteration,
            mismatch,
        })
}

/// Runs one invocation of a kernel and verifies it against the golden
/// reference, returning the first mismatch (or any other failure) as a
/// string.
pub fn verify_kernel(kernel: KernelId, isa: IsaKind, seed: u64) -> Result<(), String> {
    let mut sink = mom_arch::CountingSink::default();
    run_kernel_with_sink(kernel, isa, seed, 1, &mut sink)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Helper shared by kernel implementations: records a mismatch between a
/// reference value and a simulated value at a given element index.
pub fn mismatch<T: std::fmt::Debug>(what: &str, index: usize, expect: T, got: T) -> Mismatch {
    Mismatch {
        buffer: what.to_string(),
        index,
        expected: format!("{expect:?}"),
        got: format!("{got:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Kernel-specific verification tests live next to each kernel; here we
    // exercise the generic harness paths on one representative kernel.

    #[test]
    fn run_kernel_keeps_the_trace_bounded_while_stats_grow() {
        let one = run_kernel(KernelId::Compensation, IsaKind::Mom, 1, 1).unwrap();
        let three = run_kernel(KernelId::Compensation, IsaKind::Mom, 1, 3).unwrap();
        // The materialised trace no longer grows with the iteration count...
        assert_eq!(one.trace.len(), three.trace.len());
        assert_eq!(three.invocations, 3);
        // ...but the whole-run statistics do.
        assert_eq!(one.stats.instructions * 3, three.stats.instructions);
        assert_eq!(one.stats.operations * 3, three.stats.operations);
        assert_eq!(one.kernel, KernelId::Compensation);
        assert_eq!(one.isa, IsaKind::Mom);
        assert!(one.stats.instructions > 0);
    }

    #[test]
    fn replay_into_reproduces_the_whole_run() {
        let run = run_kernel(KernelId::Compensation, IsaKind::Mom, 1, 4).unwrap();
        let mut stats = TraceStats::default();
        run.replay_into(&mut stats);
        assert_eq!(stats, run.stats);
    }

    #[test]
    fn run_kernel_with_sink_streams_every_iteration() {
        let mut counter = mom_arch::CountingSink::default();
        let stats =
            run_kernel_with_sink(KernelId::AddBlock, IsaKind::Mmx, 3, 5, &mut counter).unwrap();
        assert_eq!(counter.retired, stats.instructions);
        let one = run_kernel(KernelId::AddBlock, IsaKind::Mmx, 3, 1).unwrap();
        assert_eq!(stats.instructions, 5 * one.stats.instructions);
    }

    #[test]
    fn verify_kernel_reports_ok_for_all_isas_of_one_kernel() {
        for isa in IsaKind::ALL {
            assert_eq!(
                verify_kernel(KernelId::Compensation, isa, 42),
                Ok(()),
                "comp/{isa}"
            );
        }
    }

    #[test]
    fn errors_carry_kernel_and_isa_context() {
        // Exhausting the instruction limit is awkward to trigger through the
        // harness (the kernels are straight-line); instead check the display
        // formats directly.
        let e = KernelError::Mismatch {
            kernel: KernelId::Idct,
            isa: IsaKind::Mom,
            iteration: 2,
            mismatch: mismatch("pixel", 3, 1u8, 2u8),
        };
        let msg = e.to_string();
        assert!(msg.contains("idct"), "{msg}");
        assert!(msg.contains("MOM"), "{msg}");
        assert!(msg.contains("iteration 2"), "{msg}");
        assert!(msg.contains("pixel[3]"), "{msg}");
        assert!(msg.contains("expected 1, got 2"), "{msg}");
    }

    #[test]
    fn mismatch_is_structured_and_formats_every_field() {
        let m = mismatch("pixel", 3, 5u8, 7u8);
        assert_eq!(
            m,
            Mismatch {
                buffer: "pixel".into(),
                index: 3,
                expected: "5".into(),
                got: "7".into(),
            }
        );
        let text = m.to_string();
        assert!(text.contains("pixel[3]"));
        assert!(text.contains('5'));
        assert!(text.contains('7'));
    }

    #[test]
    fn phase_runs_share_the_machine_and_match_fresh_runs_functionally() {
        // Two phases on one machine: both verify, and the streamed stats of
        // each phase equal a fresh per-kernel run of the same shape.
        let mut machine = app_machine();
        let mut sink = mom_arch::CountingSink::default();
        let a = run_phase_with_sink(
            &mut machine,
            KernelId::AddBlock,
            IsaKind::Mom,
            9,
            2,
            &mut sink,
        )
        .unwrap();
        let b = run_phase_with_sink(
            &mut machine,
            KernelId::Compensation,
            IsaKind::Mom,
            9,
            3,
            &mut sink,
        )
        .unwrap();
        let fresh_a = run_kernel(KernelId::AddBlock, IsaKind::Mom, 9, 2).unwrap();
        let fresh_b = run_kernel(KernelId::Compensation, IsaKind::Mom, 9, 3).unwrap();
        assert_eq!(a, fresh_a.stats, "phase chaining is functionally inert");
        assert_eq!(b, fresh_b.stats);
        assert_eq!(sink.retired, a.instructions + b.instructions);
    }
}
