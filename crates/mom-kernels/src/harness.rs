//! The kernel harness: preparing workloads, running the functional
//! simulator, verifying outputs and producing traces for the timing
//! simulator.

use crate::layout::MEMORY_SIZE;
use crate::KernelId;
use mom_arch::{Machine, Memory, Trace, TraceStats};
use mom_isa::{IsaKind, Program};

/// The interface every kernel implements: workload preparation, program
/// generation per ISA, and output verification against the golden
/// reference.
pub trait KernelSpec {
    /// Which kernel this is.
    fn id(&self) -> KernelId;

    /// Loads the kernel's workload (inputs and any constant tables) into the
    /// simulated memory, at the addresses defined in [`crate::layout`].
    fn prepare(&self, mem: &mut Memory, seed: u64);

    /// Builds the program performing one kernel invocation for the given
    /// ISA. The program must leave its results at the layout's output
    /// addresses.
    fn program(&self, isa: IsaKind) -> Program;

    /// Verifies the output region of `mem` against the golden Rust reference
    /// for the same `seed`. Returns a description of the first mismatch.
    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), String>;
}

/// The outcome of running a kernel functionally: the dynamic trace (for the
/// timing simulator) and its statistics.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Which kernel ran.
    pub kernel: KernelId,
    /// Which ISA the program used.
    pub isa: IsaKind,
    /// The concatenated dynamic trace of all iterations.
    pub trace: Trace,
    /// Trace statistics (instructions, operations, F, VLx, VLy).
    pub stats: TraceStats,
}

/// Runs `iterations` back-to-back invocations of a kernel on the functional
/// simulator, verifying the output of the first invocation, and returns the
/// concatenated trace.
///
/// Running the kernel several times mirrors the paper's methodology of
/// simulating each kernel "a certain number of times in a loop" so that the
/// steady-state behaviour dominates.
///
/// # Panics
/// Panics if the generated program fails validation, execution faults, or
/// the output does not match the golden reference.
pub fn run_kernel(kernel: KernelId, isa: IsaKind, seed: u64, iterations: usize) -> KernelRun {
    assert!(iterations >= 1, "at least one iteration is required");
    let spec = kernel.spec();
    let program = spec.program(isa);
    program
        .validate()
        .unwrap_or_else(|e| panic!("{kernel}/{isa}: invalid program: {e}"));

    let mut machine = Machine::new(Memory::new(MEMORY_SIZE));
    spec.prepare(machine.memory_mut(), seed);

    let mut trace = Trace::new();
    for iter in 0..iterations {
        let t = machine
            .run(&program)
            .unwrap_or_else(|e| panic!("{kernel}/{isa}: execution failed: {e}"));
        if iter == 0 {
            spec.verify(machine.memory(), seed)
                .unwrap_or_else(|e| panic!("{kernel}/{isa}: output mismatch: {e}"));
        }
        trace.extend(&t);
    }
    let stats = trace.stats();
    KernelRun {
        kernel,
        isa,
        trace,
        stats,
    }
}

/// Runs one invocation of a kernel and verifies it against the golden
/// reference, returning the verification result instead of panicking.
pub fn verify_kernel(kernel: KernelId, isa: IsaKind, seed: u64) -> Result<(), String> {
    let spec = kernel.spec();
    let program = spec.program(isa);
    program.validate()?;
    let mut machine = Machine::new(Memory::new(MEMORY_SIZE));
    spec.prepare(machine.memory_mut(), seed);
    machine
        .run(&program)
        .map_err(|e| format!("execution failed: {e}"))?;
    spec.verify(machine.memory(), seed)
}

/// Helper shared by kernel implementations: formats a mismatch between a
/// reference value and a simulated value at a given element index.
pub fn mismatch<T: std::fmt::Debug>(what: &str, index: usize, expect: T, got: T) -> String {
    format!("{what}[{index}]: expected {expect:?}, got {got:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    // Kernel-specific verification tests live next to each kernel; here we
    // exercise the generic harness paths on one representative kernel.

    #[test]
    fn run_kernel_produces_a_growing_trace() {
        let one = run_kernel(KernelId::Compensation, IsaKind::Mom, 1, 1);
        let three = run_kernel(KernelId::Compensation, IsaKind::Mom, 1, 3);
        assert_eq!(one.trace.len() * 3, three.trace.len());
        assert_eq!(one.kernel, KernelId::Compensation);
        assert_eq!(one.isa, IsaKind::Mom);
        assert!(one.stats.instructions > 0);
    }

    #[test]
    fn verify_kernel_reports_ok_for_all_isas_of_one_kernel() {
        for isa in IsaKind::ALL {
            assert_eq!(
                verify_kernel(KernelId::Compensation, isa, 42),
                Ok(()),
                "comp/{isa}"
            );
        }
    }

    #[test]
    fn mismatch_formatting() {
        let m = mismatch("pixel", 3, 5u8, 7u8);
        assert!(m.contains("pixel[3]"));
        assert!(m.contains('5'));
        assert!(m.contains('7'));
    }
}
