//! `h2v2` — 2×2 chroma upsampling (jpeg decode).
//!
//! The JPEG decoder expands a sub-sampled chroma plane by a factor of two in
//! both directions. Each input pixel produces a 2×2 output tile built from
//! the pixel and its right / down / diagonal neighbours with rounding
//! averages:
//!
//! ```text
//! out[2r][2c]     = in[r][c]
//! out[2r][2c+1]   = avg(in[r][c],   in[r][c+1])
//! out[2r+1][2c]   = avg(in[r][c],   in[r+1][c])
//! out[2r+1][2c+1] = avg(avg(in[r][c], in[r+1][c]), avg(in[r][c+1], in[r+1][c+1]))
//! ```
//!
//! with `avg(x, y) = (x + y + 1) >> 1`. The input plane carries one extra
//! row and column of valid samples so no edge special-casing is needed.

use crate::harness::{mismatch, KernelSpec, Mismatch};
use crate::layout::{DST, SRC_A};
use crate::workload::pixel_block;
use crate::KernelId;
use mom_arch::Memory;
use mom_isa::prelude::*;

/// Input plane width (pixels actually upsampled; one more column is valid).
pub const IN_W: usize = 16;
/// Input plane height (one more row is valid).
pub const IN_H: usize = 16;
/// Input row pitch in bytes.
pub const IN_PITCH: usize = 32;
/// Output row pitch in bytes.
pub const OUT_PITCH: usize = 2 * IN_W;

fn avg(a: u8, b: u8) -> u8 {
    ((a as u16 + b as u16 + 1) >> 1) as u8
}

/// Golden reference: upsamples the `IN_W`×`IN_H` region of `input` (which
/// must have `IN_H + 1` rows and `IN_W + 1` columns of valid data at pitch
/// `IN_PITCH`).
pub fn reference(input: &[u8]) -> Vec<u8> {
    let at = |r: usize, c: usize| input[r * IN_PITCH + c];
    let mut out = vec![0u8; 2 * IN_H * OUT_PITCH];
    for r in 0..IN_H {
        for c in 0..IN_W {
            let cur = at(r, c);
            let right = at(r, c + 1);
            let down = at(r + 1, c);
            let diag = at(r + 1, c + 1);
            out[2 * r * OUT_PITCH + 2 * c] = cur;
            out[2 * r * OUT_PITCH + 2 * c + 1] = avg(cur, right);
            out[(2 * r + 1) * OUT_PITCH + 2 * c] = avg(cur, down);
            out[(2 * r + 1) * OUT_PITCH + 2 * c + 1] = avg(avg(cur, down), avg(right, diag));
        }
    }
    out
}

/// The `h2v2` kernel.
pub struct H2v2;

impl H2v2 {
    fn build_alpha(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Alpha);
        // r1 = &in[r][c], r3 = &out[2r][2c]
        b.li(1, SRC_A as i64);
        b.li(3, DST as i64);
        b.li(10, IN_H as i64);
        b.label("row");
        b.li(11, IN_W as i64);
        b.label("col");
        b.load(MemSize::Byte, false, 5, 1, 0); // cur
        b.load(MemSize::Byte, false, 6, 1, 1); // right
        b.load(MemSize::Byte, false, 7, 1, IN_PITCH as i64); // down
        b.load(MemSize::Byte, false, 8, 1, IN_PITCH as i64 + 1); // diag
                                                                 // out[2r][2c] = cur
        b.store(MemSize::Byte, 5, 3, 0);
        // out[2r][2c+1] = avg(cur, right)
        b.add(9, 5, 6);
        b.addi(9, 9, 1);
        b.srai(9, 9, 1);
        b.store(MemSize::Byte, 9, 3, 1);
        // out[2r+1][2c] = avg(cur, down)
        b.add(12, 5, 7);
        b.addi(12, 12, 1);
        b.srai(12, 12, 1);
        b.store(MemSize::Byte, 12, 3, OUT_PITCH as i64);
        // out[2r+1][2c+1] = avg(avg(cur,down), avg(right,diag))
        b.add(13, 6, 8);
        b.addi(13, 13, 1);
        b.srai(13, 13, 1);
        b.add(13, 12, 13);
        b.addi(13, 13, 1);
        b.srai(13, 13, 1);
        b.store(MemSize::Byte, 13, 3, OUT_PITCH as i64 + 1);
        b.addi(1, 1, 1);
        b.addi(3, 3, 2);
        b.addi(11, 11, -1);
        b.branch(BranchCond::Gt, 11, 31, "col");
        b.addi(1, 1, IN_PITCH as i64 - IN_W as i64);
        b.addi(3, 3, 2 * OUT_PITCH as i64 - 2 * IN_W as i64);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "row");
        b.finish()
    }

    /// MMX and MDMX are identical (pure data-parallel averaging, no
    /// reductions), as the paper's Table 5 reflects.
    fn build_mmx(&self, isa: IsaKind) -> Program {
        let mut b = AsmBuilder::new(isa);
        b.li(1, SRC_A as i64);
        b.li(3, DST as i64);
        b.li(10, IN_H as i64);
        b.label("row");
        for group in 0..(IN_W / 8) {
            let off = 8 * group as i64;
            let out_off = 16 * group as i64;
            b.mmx_load(0, 1, off, ElemType::U8); // cur
            b.mmx_load(1, 1, off + 1, ElemType::U8); // right
            b.mmx_load(2, 1, off + IN_PITCH as i64, ElemType::U8); // down
            b.mmx_load(3, 1, off + IN_PITCH as i64 + 1, ElemType::U8); // diag
            b.mmx_op(PackedOp::Avg, ElemType::U8, 4, 0, 1); // horizontal
            b.mmx_op(PackedOp::Avg, ElemType::U8, 5, 0, 2); // vertical
            b.mmx_op(PackedOp::Avg, ElemType::U8, 6, 1, 3); // right/diag
            b.mmx_op(PackedOp::Avg, ElemType::U8, 6, 5, 6); // diagonal output
                                                            // Even output row: interleave cur with the horizontal averages.
            b.mmx_op(PackedOp::UnpackLow, ElemType::U8, 7, 0, 4);
            b.mmx_op(PackedOp::UnpackHigh, ElemType::U8, 8, 0, 4);
            b.mmx_store(7, 3, out_off, ElemType::U8);
            b.mmx_store(8, 3, out_off + 8, ElemType::U8);
            // Odd output row: interleave vertical with diagonal averages.
            b.mmx_op(PackedOp::UnpackLow, ElemType::U8, 7, 5, 6);
            b.mmx_op(PackedOp::UnpackHigh, ElemType::U8, 8, 5, 6);
            b.mmx_store(7, 3, out_off + OUT_PITCH as i64, ElemType::U8);
            b.mmx_store(8, 3, out_off + OUT_PITCH as i64 + 8, ElemType::U8);
        }
        b.addi(1, 1, IN_PITCH as i64);
        b.addi(3, 3, 2 * OUT_PITCH as i64);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "row");
        b.finish()
    }

    fn build_mom(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mom);
        // r1 = &in, r3 = &out, r4 = input pitch, r5 = 2*output pitch,
        // r6 = &in + pitch (next row), r7 = &out + OUT_PITCH (odd rows)
        b.li(1, SRC_A as i64);
        b.li(3, DST as i64);
        b.li(4, IN_PITCH as i64);
        b.li(5, 2 * OUT_PITCH as i64);
        b.set_vl_imm(IN_H as u8);
        for group in 0..(IN_W / 8) {
            let off = 8 * group as i64;
            let out_off = 16 * group as i64;
            // Pointers for this 8-pixel column group.
            b.li(2, SRC_A as i64 + off);
            b.li(6, SRC_A as i64 + off + IN_PITCH as i64);
            b.li(7, DST as i64 + out_off);
            b.li(8, DST as i64 + out_off + OUT_PITCH as i64);
            b.li(9, DST as i64 + out_off + 8);
            b.li(12, DST as i64 + out_off + OUT_PITCH as i64 + 8);
            b.li(13, SRC_A as i64 + off + 1);
            b.li(14, SRC_A as i64 + off + IN_PITCH as i64 + 1);
            b.mom_load(0, 2, 4, ElemType::U8); // cur rows
            b.mom_load(1, 13, 4, ElemType::U8); // right
            b.mom_load(2, 6, 4, ElemType::U8); // down
            b.mom_load(3, 14, 4, ElemType::U8); // diag
            b.mom_op(PackedOp::Avg, ElemType::U8, 4, 0, MomOperand::Mat(1)); // horizontal
            b.mom_op(PackedOp::Avg, ElemType::U8, 5, 0, MomOperand::Mat(2)); // vertical
            b.mom_op(PackedOp::Avg, ElemType::U8, 6, 1, MomOperand::Mat(3)); // right/diag
            b.mom_op(PackedOp::Avg, ElemType::U8, 6, 5, MomOperand::Mat(6)); // diagonal
            b.mom_op(PackedOp::UnpackLow, ElemType::U8, 7, 0, MomOperand::Mat(4));
            b.mom_op(PackedOp::UnpackHigh, ElemType::U8, 8, 0, MomOperand::Mat(4));
            b.mom_op(PackedOp::UnpackLow, ElemType::U8, 9, 5, MomOperand::Mat(6));
            b.mom_op(
                PackedOp::UnpackHigh,
                ElemType::U8,
                10,
                5,
                MomOperand::Mat(6),
            );
            b.mom_store(7, 7, 5, ElemType::U8); // even rows, left 8 outputs
            b.mom_store(8, 9, 5, ElemType::U8); // even rows, right 8 outputs
            b.mom_store(9, 8, 5, ElemType::U8); // odd rows, left 8 outputs
            b.mom_store(10, 12, 5, ElemType::U8); // odd rows, right 8 outputs
        }
        b.finish()
    }
}

impl KernelSpec for H2v2 {
    fn id(&self) -> KernelId {
        KernelId::H2v2
    }

    fn prepare(&self, mem: &mut Memory, seed: u64) {
        // One extra row and column of valid samples for the neighbourhood.
        let plane = pixel_block(seed, IN_W + 1, IN_H + 1, IN_PITCH);
        mem.load_u8_slice(SRC_A, &plane.data).unwrap();
    }

    fn program(&self, isa: IsaKind) -> Program {
        match isa {
            IsaKind::Alpha => self.build_alpha(),
            IsaKind::Mmx | IsaKind::Mdmx => self.build_mmx(isa),
            IsaKind::Mom => self.build_mom(),
        }
    }

    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
        let plane = pixel_block(seed, IN_W + 1, IN_H + 1, IN_PITCH);
        let expect = reference(&plane.data);
        let got = mem.dump_u8(DST, expect.len()).unwrap();
        for (i, (e, g)) in expect.iter().zip(got.iter()).enumerate() {
            if e != g {
                return Err(mismatch("h2v2 output", i, *e, *g));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::verify_kernel;

    #[test]
    fn reference_tile_structure() {
        // A constant plane upsamples to the same constant everywhere.
        let plane = vec![42u8; (IN_H + 1) * IN_PITCH];
        let out = reference(&plane);
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, &v)| (i % OUT_PITCH) >= 2 * IN_W || v == 42));
        // The even-row, even-column samples replicate the input exactly.
        let mut plane = vec![0u8; (IN_H + 1) * IN_PITCH];
        plane[0] = 200;
        plane[1] = 100;
        plane[IN_PITCH] = 50;
        plane[IN_PITCH + 1] = 10;
        let out = reference(&plane);
        assert_eq!(out[0], 200);
        assert_eq!(out[1], avg(200, 100));
        assert_eq!(out[OUT_PITCH], avg(200, 50));
        assert_eq!(out[OUT_PITCH + 1], avg(avg(200, 50), avg(100, 10)));
    }

    #[test]
    fn all_isas_match_reference() {
        for isa in IsaKind::ALL {
            for seed in [4, 21] {
                verify_kernel(KernelId::H2v2, isa, seed)
                    .unwrap_or_else(|e| panic!("h2v2/{isa} seed {seed}: {e}"));
            }
        }
    }
}
