//! `motion1` and `motion2` — MPEG2 motion-estimation block matching.
//!
//! Motion estimation compares the current 16×16 macroblock against a
//! candidate block of the reference frame:
//!
//! * `motion1` computes the **sum of absolute differences** (SAD),
//! * `motion2` computes the **sum of squared differences** (SSD).
//!
//! Both blocks live inside frames with row pitch [`FRAME_PITCH`]; the scalar
//! result is stored as a 32-bit word at [`DST`].

use crate::harness::{mismatch, KernelSpec, Mismatch};
use crate::layout::{DST, FRAME_PITCH, SRC_A, SRC_B};
use crate::workload::pixel_block;
use crate::KernelId;
use mom_arch::Memory;
use mom_isa::prelude::*;

/// Macroblock width and height in pixels.
pub const BLOCK: usize = 16;

/// Golden SAD reference.
pub fn reference_sad(cur: &[u8], reference: &[u8], pitch: usize) -> u32 {
    let mut sum = 0u32;
    for r in 0..BLOCK {
        for c in 0..BLOCK {
            let a = cur[r * pitch + c] as i32;
            let b = reference[r * pitch + c] as i32;
            sum += (a - b).unsigned_abs();
        }
    }
    sum
}

/// Golden SSD reference.
pub fn reference_ssd(cur: &[u8], reference: &[u8], pitch: usize) -> u32 {
    let mut sum = 0u32;
    for r in 0..BLOCK {
        for c in 0..BLOCK {
            let d = cur[r * pitch + c] as i32 - reference[r * pitch + c] as i32;
            sum += (d * d) as u32;
        }
    }
    sum
}

/// Which distance metric a motion kernel computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    AbsoluteDifferences,
    SquaredDifferences,
}

fn prepare_blocks(mem: &mut Memory, seed: u64) {
    let cur = pixel_block(seed, BLOCK, BLOCK, FRAME_PITCH as usize);
    // The reference block is the same scene content perturbed a little, as a
    // well-predicted macroblock would be.
    let refb = pixel_block(seed ^ 0x5EED, BLOCK, BLOCK, FRAME_PITCH as usize);
    mem.load_u8_slice(SRC_A, &cur.data).unwrap();
    mem.load_u8_slice(SRC_B, &refb.data).unwrap();
}

fn build_alpha(metric: Metric) -> Program {
    let mut b = AsmBuilder::new(IsaKind::Alpha);
    // r1 = &cur, r2 = &ref, r3 = accumulator, r10/r11 loop counters
    b.li(1, SRC_A as i64);
    b.li(2, SRC_B as i64);
    b.li(3, 0);
    b.li(10, BLOCK as i64);
    b.label("row");
    b.li(11, BLOCK as i64);
    b.label("col");
    b.load(MemSize::Byte, false, 5, 1, 0);
    b.load(MemSize::Byte, false, 6, 2, 0);
    b.sub(7, 5, 6);
    match metric {
        Metric::AbsoluteDifferences => {
            // |d| via compare + conditional move of the negated value.
            b.sub(8, 6, 5);
            b.alu(AluOp::CmpLt, 9, 7, 31);
            b.alu(AluOp::CmovNz, 7, 9, 8);
        }
        Metric::SquaredDifferences => {
            b.mul(7, 7, 7);
        }
    }
    b.add(3, 3, 7);
    b.addi(1, 1, 1);
    b.addi(2, 2, 1);
    b.addi(11, 11, -1);
    b.branch(BranchCond::Gt, 11, 31, "col");
    b.addi(1, 1, FRAME_PITCH as i64 - BLOCK as i64);
    b.addi(2, 2, FRAME_PITCH as i64 - BLOCK as i64);
    b.addi(10, 10, -1);
    b.branch(BranchCond::Gt, 10, 31, "row");
    b.li(4, DST as i64);
    b.store(MemSize::Word, 3, 4, 0);
    b.finish()
}

fn build_mmx(metric: Metric) -> Program {
    let mut b = AsmBuilder::new(IsaKind::Mmx);
    b.li(1, SRC_A as i64);
    b.li(2, SRC_B as i64);
    b.li(10, BLOCK as i64);
    // v7 accumulates 32-bit partial sums.
    b.li(5, 0);
    b.mmx_from_int(7, 5);
    b.label("row");
    for half in 0..2 {
        let off = 8 * half;
        b.mmx_load(0, 1, off, ElemType::U8);
        b.mmx_load(1, 2, off, ElemType::U8);
        match metric {
            Metric::AbsoluteDifferences => {
                // psadbw-style: the SAD of the two words lands in the low
                // lane; accumulate as 32-bit lanes.
                b.mmx_op(PackedOp::Sad, ElemType::U8, 2, 0, 1);
                b.mmx_op(PackedOp::Add(Overflow::Wrap), ElemType::I32, 7, 7, 2);
            }
            Metric::SquaredDifferences => {
                // |a-b| fits a byte; widen to 16 bits, square exactly with
                // pmaddwd against itself (adjacent products summed into
                // 32-bit lanes) and accumulate.
                b.mmx_op(PackedOp::AbsDiff, ElemType::U8, 2, 0, 1);
                b.mmx_op(PackedOp::WidenLow, ElemType::U8, 3, 2, 2);
                b.mmx_op(PackedOp::WidenHigh, ElemType::U8, 4, 2, 2);
                b.mmx_op(PackedOp::MaddPairs, ElemType::I16, 3, 3, 3);
                b.mmx_op(PackedOp::MaddPairs, ElemType::I16, 4, 4, 4);
                b.mmx_op(PackedOp::Add(Overflow::Wrap), ElemType::I32, 7, 7, 3);
                b.mmx_op(PackedOp::Add(Overflow::Wrap), ElemType::I32, 7, 7, 4);
            }
        }
    }
    b.addi(1, 1, FRAME_PITCH as i64);
    b.addi(2, 2, FRAME_PITCH as i64);
    b.addi(10, 10, -1);
    b.branch(BranchCond::Gt, 10, 31, "row");
    // Fold the two 32-bit lanes and store the scalar result.
    b.mmx_op(PackedOp::HSum, ElemType::I32, 6, 7, 7);
    b.mmx_to_int(5, 6);
    b.li(4, DST as i64);
    b.store(MemSize::Word, 5, 4, 0);
    b.finish()
}

fn build_mdmx(metric: Metric) -> Program {
    let mut b = AsmBuilder::new(IsaKind::Mdmx);
    b.li(1, SRC_A as i64);
    b.li(2, SRC_B as i64);
    b.li(10, BLOCK as i64);
    b.acc_clear(0);
    let op = match metric {
        Metric::AbsoluteDifferences => AccumOp::AbsDiffAdd,
        Metric::SquaredDifferences => AccumOp::SqrDiffAdd,
    };
    b.label("row");
    for half in 0..2 {
        let off = 8 * half;
        b.mmx_load(0, 1, off, ElemType::U8);
        b.mmx_load(1, 2, off, ElemType::U8);
        b.acc_step(op, ElemType::U8, 0, 0, 1);
    }
    b.addi(1, 1, FRAME_PITCH as i64);
    b.addi(2, 2, FRAME_PITCH as i64);
    b.addi(10, 10, -1);
    b.branch(BranchCond::Gt, 10, 31, "row");
    b.acc_read_scalar(5, 0);
    b.li(4, DST as i64);
    b.store(MemSize::Word, 5, 4, 0);
    b.finish()
}

fn build_mom(metric: Metric) -> Program {
    let mut b = AsmBuilder::new(IsaKind::Mom);
    // r1 = &cur, r2 = &ref, r4 = pitch
    b.li(1, SRC_A as i64);
    b.li(2, SRC_B as i64);
    b.li(4, FRAME_PITCH as i64);
    b.li(6, SRC_A as i64 + 8);
    b.li(7, SRC_B as i64 + 8);
    b.set_vl_imm(BLOCK as u8);
    b.mom_acc_clear(0);
    let op = match metric {
        Metric::AbsoluteDifferences => AccumOp::AbsDiffAdd,
        Metric::SquaredDifferences => AccumOp::SqrDiffAdd,
    };
    // Left 8 columns of both blocks, then right 8 columns.
    b.mom_load(0, 1, 4, ElemType::U8);
    b.mom_load(1, 2, 4, ElemType::U8);
    b.mom_acc_step(op, ElemType::U8, 0, 0, MomOperand::Mat(1));
    b.mom_load(2, 6, 4, ElemType::U8);
    b.mom_load(3, 7, 4, ElemType::U8);
    b.mom_acc_step(op, ElemType::U8, 0, 2, MomOperand::Mat(3));
    b.mom_acc_read_scalar(5, 0);
    b.li(8, DST as i64);
    b.store(MemSize::Word, 5, 8, 0);
    b.finish()
}

fn verify(metric: Metric, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
    let cur = pixel_block(seed, BLOCK, BLOCK, FRAME_PITCH as usize);
    let refb = pixel_block(seed ^ 0x5EED, BLOCK, BLOCK, FRAME_PITCH as usize);
    let expect = match metric {
        Metric::AbsoluteDifferences => reference_sad(&cur.data, &refb.data, FRAME_PITCH as usize),
        Metric::SquaredDifferences => reference_ssd(&cur.data, &refb.data, FRAME_PITCH as usize),
    };
    let got = mem.read_i32(DST).unwrap() as u32;
    if got != expect {
        return Err(mismatch("motion distance", 0, expect, got));
    }
    Ok(())
}

/// The `motion1` (SAD) kernel.
pub struct Motion1;

impl KernelSpec for Motion1 {
    fn id(&self) -> KernelId {
        KernelId::Motion1
    }
    fn prepare(&self, mem: &mut Memory, seed: u64) {
        prepare_blocks(mem, seed);
    }
    fn program(&self, isa: IsaKind) -> Program {
        match isa {
            IsaKind::Alpha => build_alpha(Metric::AbsoluteDifferences),
            IsaKind::Mmx => build_mmx(Metric::AbsoluteDifferences),
            IsaKind::Mdmx => build_mdmx(Metric::AbsoluteDifferences),
            IsaKind::Mom => build_mom(Metric::AbsoluteDifferences),
        }
    }
    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
        verify(Metric::AbsoluteDifferences, mem, seed)
    }
}

/// The `motion2` (SSD) kernel.
pub struct Motion2;

impl KernelSpec for Motion2 {
    fn id(&self) -> KernelId {
        KernelId::Motion2
    }
    fn prepare(&self, mem: &mut Memory, seed: u64) {
        prepare_blocks(mem, seed);
    }
    fn program(&self, isa: IsaKind) -> Program {
        match isa {
            IsaKind::Alpha => build_alpha(Metric::SquaredDifferences),
            IsaKind::Mmx => build_mmx(Metric::SquaredDifferences),
            IsaKind::Mdmx => build_mdmx(Metric::SquaredDifferences),
            IsaKind::Mom => build_mom(Metric::SquaredDifferences),
        }
    }
    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
        verify(Metric::SquaredDifferences, mem, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::verify_kernel;

    #[test]
    fn references_on_known_blocks() {
        let a = vec![100u8; 256];
        let mut b = vec![100u8; 256];
        b[0] = 110;
        b[17] = 90;
        assert_eq!(reference_sad(&a, &b, 16), 20);
        assert_eq!(reference_ssd(&a, &b, 16), 200);
        assert_eq!(reference_sad(&a, &a, 16), 0);
        assert_eq!(reference_ssd(&a, &a, 16), 0);
    }

    #[test]
    fn motion1_all_isas_match_reference() {
        for isa in IsaKind::ALL {
            for seed in [3, 19, 1234] {
                verify_kernel(KernelId::Motion1, isa, seed)
                    .unwrap_or_else(|e| panic!("motion1/{isa} seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn motion2_all_isas_match_reference() {
        for isa in IsaKind::ALL {
            for seed in [3, 19, 1234] {
                verify_kernel(KernelId::Motion2, isa, seed)
                    .unwrap_or_else(|e| panic!("motion2/{isa} seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn mom_version_has_no_loop_at_all() {
        // The whole 16x16 SAD is a handful of matrix instructions.
        let p = Motion1.program(IsaKind::Mom);
        assert!(p.len() < 20, "MOM motion1 should be tiny, got {}", p.len());
        let scalar = Motion1.program(IsaKind::Alpha).len();
        assert!(scalar < 50, "scalar static code is a loop, got {scalar}");
    }
}
