//! The nine kernel implementations.
//!
//! Each sub-module contains, for one (or two closely related) kernel(s):
//! the golden Rust reference, the workload preparation, the four program
//! generators (scalar / MMX / MDMX / MOM) and verification, all behind the
//! [`crate::KernelSpec`] trait.

pub mod addblock;
pub mod compensation;
pub mod h2v2;
pub mod idct;
pub mod ltp;
pub mod motion;
pub mod rgb2ycc;

use crate::{KernelId, KernelSpec};

/// Returns the specification object for a kernel.
pub fn spec(id: KernelId) -> Box<dyn KernelSpec> {
    match id {
        KernelId::Idct => Box::new(idct::Idct),
        KernelId::Motion1 => Box::new(motion::Motion1),
        KernelId::Motion2 => Box::new(motion::Motion2),
        KernelId::Rgb2Ycc => Box::new(rgb2ycc::Rgb2Ycc),
        KernelId::H2v2 => Box::new(h2v2::H2v2),
        KernelId::Compensation => Box::new(compensation::Compensation),
        KernelId::AddBlock => Box::new(addblock::AddBlock),
        KernelId::LtpPar => Box::new(ltp::LtpPar),
        KernelId::LtpFilt => Box::new(ltp::LtpFilt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom_isa::IsaKind;

    /// Every kernel must produce a valid program for every ISA, and that
    /// program must only use instructions of that ISA.
    #[test]
    fn every_kernel_builds_valid_programs_for_every_isa() {
        for id in KernelId::ALL {
            for isa in IsaKind::ALL {
                let p = spec(id).program(isa);
                assert_eq!(p.isa(), isa);
                p.validate().unwrap_or_else(|e| panic!("{id}/{isa}: {e}"));
                assert!(!p.is_empty(), "{id}/{isa}: empty program");
            }
        }
    }

    /// The multimedia variants must execute fewer dynamic instructions than
    /// the scalar baseline, and MOM fewer than MMX — the fetch-pressure
    /// argument of the paper (its "R" and OPI factors).
    #[test]
    fn dynamic_instruction_counts_shrink_towards_mom() {
        for id in KernelId::ALL {
            let scalar = crate::run_kernel(id, IsaKind::Alpha, 11, 1)
                .unwrap()
                .trace
                .len();
            let mmx = crate::run_kernel(id, IsaKind::Mmx, 11, 1)
                .unwrap()
                .trace
                .len();
            let mom = crate::run_kernel(id, IsaKind::Mom, 11, 1)
                .unwrap()
                .trace
                .len();
            assert!(
                mmx < scalar,
                "{id}: MMX dynamic length {mmx} should be below scalar {scalar}"
            );
            assert!(
                mom < mmx,
                "{id}: MOM dynamic length {mom} should be below MMX {mmx}"
            );
        }
    }
}
