//! `ltppar` and `ltpsfilt` — GSM long-term-predictor kernels.
//!
//! * `ltppar` (gsm encode, `Calculation_of_the_LTP_parameters`): for every
//!   candidate lag λ in 40..=120, correlate the 40-sample weighted window
//!   `wt` against the reconstructed short-term residual `dp` delayed by λ,
//!   and return the lag with the maximum correlation (and the correlation
//!   value itself).
//!
//! * `ltpsfilt` (gsm decode, long-/short-term filtering): an 8-tap FIR filter
//!   over a 120-sample frame,
//!   `out[i] = sat16(round((Σ_j coef[j]·x[i+j]) / 2^15))`,
//!   with `round(v / 2^s) = (v + 2^(s-1)) >> s`.
//!
//! Both are the "special dot products" the paper extracts from the GSM
//! codec.

use crate::harness::{mismatch, KernelSpec, Mismatch};
use crate::layout::{COEF, DST, SRC_A, SRC_B};
use crate::workload::pcm_samples;
use crate::KernelId;
use mom_arch::Memory;
use mom_isa::prelude::*;
use mom_simd::lanes::from_lanes;

// ---------------------------------------------------------------------------
// ltppar
// ---------------------------------------------------------------------------

/// Number of samples in the correlation window.
pub const WT_LEN: usize = 40;
/// Smallest candidate lag.
pub const LAG_MIN: usize = 40;
/// Largest candidate lag.
pub const LAG_MAX: usize = 120;
/// Number of history samples (`dp[-LAG_MAX .. 0]`, stored oldest first).
pub const DP_LEN: usize = LAG_MAX + WT_LEN;

/// Golden reference for `ltppar`: returns `(best_lag, max_correlation)`.
///
/// `dp` holds `DP_LEN` samples, where `dp[j]` is the reconstructed residual
/// at time `j - LAG_MAX` (so the window for lag λ starts at `LAG_MAX - λ`).
pub fn reference_ltppar(wt: &[i16], dp: &[i16]) -> (i64, i64) {
    let mut best_lag = LAG_MIN as i64;
    let mut best = i64::MIN;
    for lag in LAG_MIN..=LAG_MAX {
        let base = LAG_MAX - lag;
        let corr: i64 = (0..WT_LEN)
            .map(|i| wt[i] as i64 * dp[base + i] as i64)
            .sum();
        if corr > best {
            best = corr;
            best_lag = lag as i64;
        }
    }
    (best_lag, best)
}

/// The `ltppar` kernel.
pub struct LtpPar;

impl LtpPar {
    fn build_alpha(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Alpha);
        // r1 = &wt, r2 = &dp window, r20 = best corr, r21 = best lag, r22 = lag
        b.li(1, SRC_A as i64);
        b.li(20, i64::MIN);
        b.li(21, LAG_MIN as i64);
        b.li(22, LAG_MIN as i64);
        b.li(23, LAG_MAX as i64);
        b.label("lag");
        // Window base for this lag: dp + 2*(LAG_MAX - lag).
        b.li(2, (SRC_B + 2 * LAG_MAX as u64) as i64);
        b.slli(5, 22, 1);
        b.sub(2, 2, 5);
        b.li(3, 0); // correlation accumulator
        b.li(10, WT_LEN as i64);
        b.li(4, SRC_A as i64);
        b.label("sample");
        b.load(MemSize::Half, true, 5, 4, 0);
        b.load(MemSize::Half, true, 6, 2, 0);
        b.mul(7, 5, 6);
        b.add(3, 3, 7);
        b.addi(4, 4, 2);
        b.addi(2, 2, 2);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "sample");
        // max update
        b.alu(AluOp::CmpLt, 8, 20, 3);
        b.alu(AluOp::CmovNz, 20, 8, 3);
        b.alu(AluOp::CmovNz, 21, 8, 22);
        b.addi(22, 22, 1);
        b.branch(BranchCond::Le, 22, 23, "lag");
        b.li(9, DST as i64);
        b.store(MemSize::Quad, 21, 9, 0);
        b.store(MemSize::Quad, 20, 9, 8);
        b.finish()
    }

    fn build_mmx(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mmx);
        // Hoist the ten wt words into v0..v9.
        b.li(1, SRC_A as i64);
        for w in 0..(WT_LEN / 4) as u8 {
            b.mmx_load(w, 1, 8 * w as i64, ElemType::I16);
        }
        b.li(20, i64::MIN);
        b.li(21, LAG_MIN as i64);
        b.li(22, LAG_MIN as i64);
        b.li(23, LAG_MAX as i64);
        b.label("lag");
        b.li(2, (SRC_B + 2 * LAG_MAX as u64) as i64);
        b.slli(5, 22, 1);
        b.sub(2, 2, 5);
        // v15 accumulates two 32-bit partial sums.
        b.li(5, 0);
        b.mmx_from_int(15, 5);
        for w in 0..(WT_LEN / 4) as u8 {
            b.mmx_load(10, 2, 8 * w as i64, ElemType::I16);
            b.mmx_op(PackedOp::MaddPairs, ElemType::I16, 11, w, 10);
            b.mmx_op(PackedOp::Add(Overflow::Wrap), ElemType::I32, 15, 15, 11);
        }
        b.mmx_op(PackedOp::HSum, ElemType::I32, 14, 15, 15);
        b.mmx_to_int(3, 14);
        b.alu(AluOp::CmpLt, 8, 20, 3);
        b.alu(AluOp::CmovNz, 20, 8, 3);
        b.alu(AluOp::CmovNz, 21, 8, 22);
        b.addi(22, 22, 1);
        b.branch(BranchCond::Le, 22, 23, "lag");
        b.li(9, DST as i64);
        b.store(MemSize::Quad, 21, 9, 0);
        b.store(MemSize::Quad, 20, 9, 8);
        b.finish()
    }

    fn build_mdmx(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mdmx);
        b.li(1, SRC_A as i64);
        for w in 0..(WT_LEN / 4) as u8 {
            b.mmx_load(w, 1, 8 * w as i64, ElemType::I16);
        }
        b.li(20, i64::MIN);
        b.li(21, LAG_MIN as i64);
        b.li(22, LAG_MIN as i64);
        b.li(23, LAG_MAX as i64);
        b.label("lag");
        b.li(2, (SRC_B + 2 * LAG_MAX as u64) as i64);
        b.slli(5, 22, 1);
        b.sub(2, 2, 5);
        b.acc_clear(0);
        for w in 0..(WT_LEN / 4) as u8 {
            b.mmx_load(10, 2, 8 * w as i64, ElemType::I16);
            b.acc_step(AccumOp::MulAdd, ElemType::I16, 0, w, 10);
        }
        b.acc_read_scalar(3, 0);
        b.alu(AluOp::CmpLt, 8, 20, 3);
        b.alu(AluOp::CmovNz, 20, 8, 3);
        b.alu(AluOp::CmovNz, 21, 8, 22);
        b.addi(22, 22, 1);
        b.branch(BranchCond::Le, 22, 23, "lag");
        b.li(9, DST as i64);
        b.store(MemSize::Quad, 21, 9, 0);
        b.store(MemSize::Quad, 20, 9, 8);
        b.finish()
    }

    fn build_mom(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mom);
        // The whole 40-sample window is one 10-row matrix (dimension Y).
        b.li(1, SRC_A as i64);
        b.li(4, 8); // row stride
        b.set_vl_imm((WT_LEN / 4) as u8);
        b.mom_load(0, 1, 4, ElemType::I16); // wt, hoisted
        b.li(20, i64::MIN);
        b.li(21, LAG_MIN as i64);
        b.li(22, LAG_MIN as i64);
        b.li(23, LAG_MAX as i64);
        b.label("lag");
        b.li(2, (SRC_B + 2 * LAG_MAX as u64) as i64);
        b.slli(5, 22, 1);
        b.sub(2, 2, 5);
        b.mom_load(1, 2, 4, ElemType::I16); // dp window for this lag
        b.mom_acc_clear(0);
        b.mom_acc_step(AccumOp::MulAdd, ElemType::I16, 0, 0, MomOperand::Mat(1));
        b.mom_acc_read_scalar(3, 0);
        b.alu(AluOp::CmpLt, 8, 20, 3);
        b.alu(AluOp::CmovNz, 20, 8, 3);
        b.alu(AluOp::CmovNz, 21, 8, 22);
        b.addi(22, 22, 1);
        b.branch(BranchCond::Le, 22, 23, "lag");
        b.li(9, DST as i64);
        b.store(MemSize::Quad, 21, 9, 0);
        b.store(MemSize::Quad, 20, 9, 8);
        b.finish()
    }
}

impl KernelSpec for LtpPar {
    fn id(&self) -> KernelId {
        KernelId::LtpPar
    }

    fn prepare(&self, mem: &mut Memory, seed: u64) {
        let wt = pcm_samples(seed, WT_LEN);
        let dp = pcm_samples(seed ^ 0x17F, DP_LEN);
        mem.load_i16_slice(SRC_A, &wt).unwrap();
        mem.load_i16_slice(SRC_B, &dp).unwrap();
    }

    fn program(&self, isa: IsaKind) -> Program {
        match isa {
            IsaKind::Alpha => self.build_alpha(),
            IsaKind::Mmx => self.build_mmx(),
            IsaKind::Mdmx => self.build_mdmx(),
            IsaKind::Mom => self.build_mom(),
        }
    }

    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
        let wt = pcm_samples(seed, WT_LEN);
        let dp = pcm_samples(seed ^ 0x17F, DP_LEN);
        let (lag, corr) = reference_ltppar(&wt, &dp);
        let got_lag = mem.read_uint(DST, 8).unwrap() as i64;
        let got_corr = mem.read_uint(DST + 8, 8).unwrap() as i64;
        if got_lag != lag {
            return Err(mismatch("ltppar best lag", 0, lag, got_lag));
        }
        if got_corr != corr {
            return Err(mismatch("ltppar max correlation", 0, corr, got_corr));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// ltpsfilt
// ---------------------------------------------------------------------------

/// Number of filter taps.
pub const TAPS: usize = 8;
/// Number of output samples per frame.
pub const FRAME: usize = 120;
/// Fixed-point scaling of the filter coefficients.
pub const FILTER_SHIFT: u32 = 15;

/// The fixed filter coefficients (Q15-ish interpolation weights summing to
/// just under 1.0, as the GSM long-term gain-scaled taps do).
pub const FILTER_COEF: [i16; TAPS] = [-1536, 3072, 6144, 12288, 12288, 6144, 3072, -1536];

/// Golden reference for `ltpsfilt`.
pub fn reference_ltpsfilt(x: &[i16]) -> Vec<i16> {
    (0..FRAME)
        .map(|i| {
            let sum: i64 = (0..TAPS)
                .map(|j| FILTER_COEF[j] as i64 * x[i + j] as i64)
                .sum();
            let rounded = (sum + (1 << (FILTER_SHIFT - 1))) >> FILTER_SHIFT;
            rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16
        })
        .collect()
}

/// The `ltpsfilt` kernel.
pub struct LtpFilt;

impl LtpFilt {
    fn build_alpha(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Alpha);
        // Hoist the taps into r20..r27 (a compiler would keep them live).
        b.li(1, COEF as i64);
        for (j, _) in FILTER_COEF.iter().enumerate() {
            b.load(MemSize::Half, true, 20 + j as u8, 1, 2 * j as i64);
        }
        b.li(2, SRC_B as i64); // &x[i]
        b.li(3, DST as i64);
        b.li(28, 32767);
        b.li(29, -32768);
        b.li(10, FRAME as i64);
        b.label("sample");
        b.li(5, 0);
        for j in 0..TAPS {
            b.load(MemSize::Half, true, 6, 2, 2 * j as i64);
            b.mul(6, 6, 20 + j as u8);
            b.add(5, 5, 6);
        }
        b.addi(5, 5, 1 << (FILTER_SHIFT - 1));
        b.srai(5, 5, FILTER_SHIFT as i64);
        // clamp to i16
        b.alu(AluOp::CmpLt, 8, 28, 5);
        b.alu(AluOp::CmovNz, 5, 8, 28);
        b.alu(AluOp::CmpLt, 8, 5, 29);
        b.alu(AluOp::CmovNz, 5, 8, 29);
        b.store(MemSize::Half, 5, 3, 0);
        b.addi(2, 2, 2);
        b.addi(3, 3, 2);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "sample");
        b.finish()
    }

    fn build_mmx(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mmx);
        // Coefficient words (two halves of the 8 taps) hoisted into v0, v1.
        b.li(1, COEF as i64);
        b.mmx_load(0, 1, 0, ElemType::I16);
        b.mmx_load(1, 1, 8, ElemType::I16);
        b.li(20, 1 << (FILTER_SHIFT - 1));
        b.li(2, SRC_B as i64);
        b.li(3, DST as i64);
        b.li(28, 32767);
        b.li(29, -32768);
        b.li(10, FRAME as i64);
        b.label("sample");
        b.mmx_load(2, 2, 0, ElemType::I16); // x[i..i+4]
        b.mmx_load(3, 2, 8, ElemType::I16); // x[i+4..i+8]
        b.mmx_op(PackedOp::MaddPairs, ElemType::I16, 4, 2, 0);
        b.mmx_op(PackedOp::MaddPairs, ElemType::I16, 5, 3, 1);
        b.mmx_op(PackedOp::Add(Overflow::Wrap), ElemType::I32, 4, 4, 5);
        b.mmx_op(PackedOp::HSum, ElemType::I32, 4, 4, 4);
        b.mmx_to_int(5, 4);
        b.add(5, 5, 20);
        b.srai(5, 5, FILTER_SHIFT as i64);
        b.alu(AluOp::CmpLt, 8, 28, 5);
        b.alu(AluOp::CmovNz, 5, 8, 28);
        b.alu(AluOp::CmpLt, 8, 5, 29);
        b.alu(AluOp::CmovNz, 5, 8, 29);
        b.store(MemSize::Half, 5, 3, 0);
        b.addi(2, 2, 2);
        b.addi(3, 3, 2);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "sample");
        b.finish()
    }

    fn build_mdmx(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mdmx);
        // Per-tap splatted coefficients hoisted into v20..v27; four outputs
        // are produced per iteration by accumulating the eight taps.
        b.li(1, COEF as i64);
        for j in 0..TAPS as u8 {
            b.load(MemSize::Half, true, 5, 1, 2 * j as i64);
            b.mmx_splat(20 + j, 5, ElemType::I16);
        }
        b.li(2, SRC_B as i64);
        b.li(3, DST as i64);
        b.li(10, (FRAME / 4) as i64);
        b.label("group");
        b.acc_clear(0);
        for j in 0..TAPS as u8 {
            b.mmx_load(10, 2, 2 * j as i64, ElemType::I16); // x[i+j .. i+j+4]
            b.acc_step(AccumOp::MulAdd, ElemType::I16, 0, 10, 20 + j);
        }
        b.acc_read(11, 0, ElemType::I16, FILTER_SHIFT, true);
        b.mmx_store(11, 3, 0, ElemType::I16);
        b.addi(2, 2, 8);
        b.addi(3, 3, 8);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "group");
        b.finish()
    }

    fn build_mom(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mom);
        // The eight taps become dimension Y: the data matrix row j holds
        // x[i+j .. i+j+4] (an overlapping, stride-2 strided load), and the
        // constant coefficient matrix row j is the splatted tap j.
        b.li(1, (COEF + 16) as i64); // splatted-tap matrix
        b.li(4, 8);
        b.li(5, 2); // data row stride: two bytes, overlapping windows
        b.set_vl_imm(TAPS as u8);
        b.mom_load(1, 1, 4, ElemType::I16); // coefficient matrix, hoisted
        b.li(2, SRC_B as i64);
        b.li(3, DST as i64);
        b.li(10, (FRAME / 4) as i64);
        b.label("group");
        b.mom_load(0, 2, 5, ElemType::I16); // rows: x[i..i+4], x[i+1..i+5], ...
        b.mom_acc_clear(0);
        b.mom_acc_step(AccumOp::MulAdd, ElemType::I16, 0, 0, MomOperand::Mat(1));
        b.mom_acc_read(11, 0, ElemType::I16, FILTER_SHIFT, true);
        b.mmx_store(11, 3, 0, ElemType::I16);
        b.addi(2, 2, 8);
        b.addi(3, 3, 8);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "group");
        b.finish()
    }
}

impl KernelSpec for LtpFilt {
    fn id(&self) -> KernelId {
        KernelId::LtpFilt
    }

    fn prepare(&self, mem: &mut Memory, seed: u64) {
        let x = pcm_samples(seed, FRAME + TAPS);
        mem.load_i16_slice(SRC_B, &x).unwrap();
        mem.load_i16_slice(COEF, &FILTER_COEF).unwrap();
        // Splatted-tap coefficient matrix for the MOM variant.
        for (j, &c) in FILTER_COEF.iter().enumerate() {
            let row = from_lanes(&[c as i64; 4], ElemType::I16);
            mem.write_u64(COEF + 16 + 8 * j as u64, row).unwrap();
        }
    }

    fn program(&self, isa: IsaKind) -> Program {
        match isa {
            IsaKind::Alpha => self.build_alpha(),
            IsaKind::Mmx => self.build_mmx(),
            IsaKind::Mdmx => self.build_mdmx(),
            IsaKind::Mom => self.build_mom(),
        }
    }

    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
        let x = pcm_samples(seed, FRAME + TAPS);
        let expect = reference_ltpsfilt(&x);
        let got = mem.dump_i16(DST, FRAME).unwrap();
        for (i, (e, g)) in expect.iter().zip(got.iter()).enumerate() {
            if e != g {
                return Err(mismatch("ltpsfilt output", i, *e, *g));
            }
        }
        Ok(())
    }
}

// The wt-window correlation for lag λ never overflows: |wt|,|dp| ≤ 4095, so
// |corr| ≤ 40·4095² ≈ 6.7·10⁸ < 2³¹.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::verify_kernel;

    #[test]
    fn ltppar_reference_finds_the_obvious_lag() {
        // dp is a delayed copy of wt at lag 57: the correlation peaks there.
        let wt = pcm_samples(123, WT_LEN);
        let mut dp = vec![0i16; DP_LEN];
        let lag = 57;
        for i in 0..WT_LEN {
            dp[LAG_MAX - lag + i] = wt[i];
        }
        let (best, corr) = reference_ltppar(&wt, &dp);
        assert_eq!(best, lag as i64);
        assert_eq!(corr, wt.iter().map(|&v| v as i64 * v as i64).sum::<i64>());
    }

    #[test]
    fn ltpsfilt_reference_dc_gain() {
        // A constant input is scaled by the sum of taps / 2^15.
        let x = vec![1000i16; FRAME + TAPS];
        let out = reference_ltpsfilt(&x);
        let gain: i64 = FILTER_COEF.iter().map(|&c| c as i64).sum();
        let expect = ((1000 * gain + (1 << 14)) >> 15) as i16;
        assert!(out.iter().all(|&v| v == expect));
    }

    #[test]
    fn ltppar_all_isas_match_reference() {
        for isa in IsaKind::ALL {
            for seed in [8, 91] {
                verify_kernel(KernelId::LtpPar, isa, seed)
                    .unwrap_or_else(|e| panic!("ltppar/{isa} seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn ltpsfilt_all_isas_match_reference() {
        for isa in IsaKind::ALL {
            for seed in [8, 91] {
                verify_kernel(KernelId::LtpFilt, isa, seed)
                    .unwrap_or_else(|e| panic!("ltpsfilt/{isa} seed {seed}: {e}"));
            }
        }
    }
}
