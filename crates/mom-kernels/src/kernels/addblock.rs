//! `addblock` — saturated residual addition (mpeg2 decode motion
//! compensation).
//!
//! The decoder adds the 8×8 signed IDCT residual to the 8×8 unsigned
//! prediction and clamps the result to the 0..=255 pixel range:
//!
//! ```text
//! out[r][c] = clamp(pred[r][c] + resid[r][c], 0, 255)
//! ```
//!
//! The prediction and the output live in the reference frame (pitch
//! [`FRAME_PITCH`]); the residual is a dense 8×8 block of 16-bit values.

use crate::harness::{mismatch, KernelSpec, Mismatch};
use crate::layout::{DST, FRAME_PITCH, SRC_A, SRC_B};
use crate::workload::{pixel_block, residual_block};
use crate::KernelId;
use mom_arch::Memory;
use mom_isa::prelude::*;

/// Block width and height in pixels.
pub const BLOCK: usize = 8;

/// Golden reference.
pub fn reference(pred: &[u8], pred_pitch: usize, resid: &[i16]) -> Vec<u8> {
    let mut out = vec![0u8; BLOCK * BLOCK];
    for r in 0..BLOCK {
        for c in 0..BLOCK {
            let v = pred[r * pred_pitch + c] as i32 + resid[r * BLOCK + c] as i32;
            out[r * BLOCK + c] = v.clamp(0, 255) as u8;
        }
    }
    out
}

/// The `addblock` kernel.
pub struct AddBlock;

impl AddBlock {
    fn build_alpha(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Alpha);
        // r1 = &resid, r2 = &pred, r3 = &out, r20 = 255
        b.li(1, SRC_A as i64);
        b.li(2, SRC_B as i64);
        b.li(3, DST as i64);
        b.li(20, 255);
        b.li(10, BLOCK as i64);
        b.label("row");
        b.li(11, BLOCK as i64);
        b.label("col");
        b.load(MemSize::Byte, false, 5, 2, 0); // pred
        b.load(MemSize::Half, true, 6, 1, 0); // resid
        b.add(7, 5, 6);
        // clamp low: if 7 < 0 then 7 = 0
        b.alu(AluOp::CmpLt, 8, 7, 31);
        b.alu(AluOp::CmovNz, 7, 8, 31);
        // clamp high: if 255 < 7 then 7 = 255
        b.alu(AluOp::CmpLt, 8, 20, 7);
        b.alu(AluOp::CmovNz, 7, 8, 20);
        b.store(MemSize::Byte, 7, 3, 0);
        b.addi(1, 1, 2);
        b.addi(2, 2, 1);
        b.addi(3, 3, 1);
        b.addi(11, 11, -1);
        b.branch(BranchCond::Gt, 11, 31, "col");
        b.addi(2, 2, FRAME_PITCH as i64 - BLOCK as i64);
        b.addi(3, 3, FRAME_PITCH as i64 - BLOCK as i64);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "row");
        b.finish()
    }

    /// MMX and MDMX are identical: widen the prediction to 16 bits, add the
    /// residual, pack back with unsigned-byte saturation (the pack performs
    /// the clamp), as the paper's identical Table 7 rows reflect.
    fn build_mmx(&self, isa: IsaKind) -> Program {
        let mut b = AsmBuilder::new(isa);
        b.li(1, SRC_A as i64);
        b.li(2, SRC_B as i64);
        b.li(3, DST as i64);
        b.li(10, BLOCK as i64);
        b.label("row");
        b.mmx_load(0, 2, 0, ElemType::U8); // pred row (8 pixels)
        b.mmx_op(PackedOp::WidenLow, ElemType::U8, 1, 0, 0); // pred[0..4] as i16
        b.mmx_op(PackedOp::WidenHigh, ElemType::U8, 2, 0, 0); // pred[4..8] as i16
        b.mmx_load(3, 1, 0, ElemType::I16); // resid[0..4]
        b.mmx_load(4, 1, 8, ElemType::I16); // resid[4..8]
        b.mmx_op(PackedOp::Add(Overflow::Wrap), ElemType::I16, 5, 1, 3);
        b.mmx_op(PackedOp::Add(Overflow::Wrap), ElemType::I16, 6, 2, 4);
        b.mmx_op(PackedOp::PackSat(ElemType::U8), ElemType::I16, 7, 5, 6);
        b.mmx_store(7, 3, 0, ElemType::U8);
        b.addi(1, 1, 2 * BLOCK as i64);
        b.addi(2, 2, FRAME_PITCH as i64);
        b.addi(3, 3, FRAME_PITCH as i64);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "row");
        b.finish()
    }

    fn build_mom(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mom);
        // r1 = &resid, r2 = &pred, r3 = &out, r4 = frame pitch, r5 = resid pitch
        b.li(1, SRC_A as i64);
        b.li(2, SRC_B as i64);
        b.li(3, DST as i64);
        b.li(4, FRAME_PITCH as i64);
        b.li(5, 2 * BLOCK as i64);
        b.li(6, SRC_A as i64 + 8);
        b.set_vl_imm(BLOCK as u8);
        b.mom_load(0, 2, 4, ElemType::U8); // prediction, 8 rows of 8 pixels
        b.mom_op(PackedOp::WidenLow, ElemType::U8, 1, 0, MomOperand::Mat(0));
        b.mom_op(PackedOp::WidenHigh, ElemType::U8, 2, 0, MomOperand::Mat(0));
        b.mom_load(3, 1, 5, ElemType::I16); // residual columns 0..4
        b.mom_load(4, 6, 5, ElemType::I16); // residual columns 4..8
        b.mom_op(
            PackedOp::Add(Overflow::Wrap),
            ElemType::I16,
            5,
            1,
            MomOperand::Mat(3),
        );
        b.mom_op(
            PackedOp::Add(Overflow::Wrap),
            ElemType::I16,
            6,
            2,
            MomOperand::Mat(4),
        );
        b.mom_op(
            PackedOp::PackSat(ElemType::U8),
            ElemType::I16,
            7,
            5,
            MomOperand::Mat(6),
        );
        b.mom_store(7, 3, 4, ElemType::U8);
        b.finish()
    }
}

impl KernelSpec for AddBlock {
    fn id(&self) -> KernelId {
        KernelId::AddBlock
    }

    fn prepare(&self, mem: &mut Memory, seed: u64) {
        let pred = pixel_block(seed, BLOCK, BLOCK, FRAME_PITCH as usize);
        let resid = residual_block(seed ^ 0xADD, BLOCK * BLOCK);
        mem.load_i16_slice(SRC_A, &resid).unwrap();
        mem.load_u8_slice(SRC_B, &pred.data).unwrap();
    }

    fn program(&self, isa: IsaKind) -> Program {
        match isa {
            IsaKind::Alpha => self.build_alpha(),
            IsaKind::Mmx | IsaKind::Mdmx => self.build_mmx(isa),
            IsaKind::Mom => self.build_mom(),
        }
    }

    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
        let pred = pixel_block(seed, BLOCK, BLOCK, FRAME_PITCH as usize);
        let resid = residual_block(seed ^ 0xADD, BLOCK * BLOCK);
        let expect = reference(&pred.data, FRAME_PITCH as usize, &resid);
        for r in 0..BLOCK {
            let got = mem.dump_u8(DST + r as u64 * FRAME_PITCH, BLOCK).unwrap();
            for c in 0..BLOCK {
                if got[c] != expect[r * BLOCK + c] {
                    return Err(mismatch(
                        "addblock output",
                        r * BLOCK + c,
                        expect[r * BLOCK + c],
                        got[c],
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::verify_kernel;

    #[test]
    fn reference_clamps_both_ends() {
        let pred = [10u8, 250, 128, 0, 0, 0, 0, 0].repeat(8);
        let mut resid = vec![0i16; 64];
        resid[0] = -50; // 10 - 50 -> 0
        resid[1] = 50; // 250 + 50 -> 255
        resid[2] = 100; // 128 + 100 -> 228
        let out = reference(&pred, 8, &resid);
        assert_eq!(out[0], 0);
        assert_eq!(out[1], 255);
        assert_eq!(out[2], 228);
    }

    #[test]
    fn all_isas_match_reference() {
        for isa in IsaKind::ALL {
            for seed in [2, 31, 77] {
                verify_kernel(KernelId::AddBlock, isa, seed)
                    .unwrap_or_else(|e| panic!("addblock/{isa} seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn clamping_is_exercised_by_the_workload() {
        // At least one element of the default workloads must hit each clamp
        // bound; otherwise the saturating paths would be untested.
        let mut saw_low = false;
        let mut saw_high = false;
        for seed in 0..20 {
            let pred = pixel_block(seed, BLOCK, BLOCK, FRAME_PITCH as usize);
            let resid = residual_block(seed ^ 0xADD, BLOCK * BLOCK);
            for r in 0..BLOCK {
                for c in 0..BLOCK {
                    let v = pred.at(r, c) as i32 + resid[r * BLOCK + c] as i32;
                    if v < 0 {
                        saw_low = true;
                    }
                    if v > 255 {
                        saw_high = true;
                    }
                }
            }
        }
        assert!(saw_low && saw_high);
    }
}
