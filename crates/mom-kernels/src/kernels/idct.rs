//! `idct` — the 8×8 inverse discrete cosine transform (mpeg2 / jpeg decode).
//!
//! The 2-D IDCT is `out = Cᵀ·in·C`, where `C` is the 8×8 DCT basis matrix in
//! Q13 fixed point. It is computed as two identical 1-D column passes with a
//! transpose in between (and one at the end):
//!
//! ```text
//! colpass(X, s)[r][c] = sat16(round((Σ_k C[k][r]·X[k][c]) / 2^s))
//! out = transpose(colpass(transpose(colpass(in, 11)), 15))
//! ```
//!
//! with `round(v / 2^s) = (v + 2^(s-1)) >> s`. All four ISA variants follow
//! this exact specification, so their outputs are bit-identical:
//!
//! * the scalar version computes dot products element by element and stores
//!   each pass transposed (the transpose is free in the addressing),
//! * the MMX version transposes the input in registers with the classic
//!   unpack sequence and uses `pmaddwd` dot products,
//! * the MDMX version replaces the multiply-add/`hsum` sequence with its
//!   packed accumulator,
//! * the MOM version expresses each pass as eight accumulator reductions
//!   along dimension Y (one per output row), using constant splat-coefficient
//!   matrices, and uses the matrix-transpose instruction between passes —
//!   the "switch vector dimensions" use case of Section 3.

use crate::harness::{mismatch, KernelSpec, Mismatch};
use crate::layout::{COEF, DST, SCRATCH, SRC_A};
use crate::workload::dct_block;
use crate::KernelId;
use mom_arch::Memory;
use mom_isa::prelude::*;
use mom_simd::lanes::from_lanes;

/// Fixed-point scale of the DCT basis matrix (Q13).
pub const BASIS_SHIFT: u32 = 13;
/// Rounding shift after the first (column) pass.
pub const PASS1_SHIFT: u32 = 11;
/// Rounding shift after the second pass (total 2·13 = 26).
pub const PASS2_SHIFT: u32 = 15;

/// The Q13 DCT basis matrix: `C[u][x] = round(s(u)·cos((2x+1)uπ/16)·2^13)`
/// with `s(0) = √(1/8)` and `s(u>0) = 1/2`.
pub fn basis() -> [[i16; 8]; 8] {
    let mut c = [[0i16; 8]; 8];
    for (u, row) in c.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            let s = if u == 0 { (1.0f64 / 8.0).sqrt() } else { 0.5 };
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            *v = (s * angle.cos() * f64::from(1 << BASIS_SHIFT)).round() as i16;
        }
    }
    c
}

fn sat16(v: i64) -> i64 {
    v.clamp(i16::MIN as i64, i16::MAX as i64)
}

fn round_shift(v: i64, s: u32) -> i64 {
    (v + (1 << (s - 1))) >> s
}

fn colpass(x: &[[i64; 8]; 8], shift: u32) -> [[i64; 8]; 8] {
    let c = basis();
    let mut y = [[0i64; 8]; 8];
    for r in 0..8 {
        for col in 0..8 {
            let sum: i64 = (0..8).map(|k| c[k][r] as i64 * x[k][col]).sum();
            y[r][col] = sat16(round_shift(sum, shift));
        }
    }
    y
}

fn transpose8(x: &[[i64; 8]; 8]) -> [[i64; 8]; 8] {
    let mut t = [[0i64; 8]; 8];
    for r in 0..8 {
        for c in 0..8 {
            t[r][c] = x[c][r];
        }
    }
    t
}

/// Golden reference 2-D IDCT.
pub fn reference(input: &[[i16; 8]; 8]) -> [[i16; 8]; 8] {
    let x: [[i64; 8]; 8] = std::array::from_fn(|r| std::array::from_fn(|c| input[r][c] as i64));
    let p1 = colpass(&x, PASS1_SHIFT);
    let p2 = colpass(&transpose8(&p1), PASS2_SHIFT);
    let out = transpose8(&p2);
    std::array::from_fn(|r| std::array::from_fn(|c| out[r][c] as i16))
}

/// A straightforward floating-point IDCT, used only to sanity-check the
/// fixed-point reference.
pub fn reference_f64(input: &[[i16; 8]; 8]) -> [[f64; 8]; 8] {
    let mut out = [[0.0f64; 8]; 8];
    for (x, row) in out.iter_mut().enumerate() {
        for (y, v) in row.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (u, in_row) in input.iter().enumerate() {
                for (w, coef) in in_row.iter().enumerate() {
                    let su = if u == 0 { (1.0f64 / 8.0).sqrt() } else { 0.5 };
                    let sw = if w == 0 { (1.0f64 / 8.0).sqrt() } else { 0.5 };
                    sum += su
                        * sw
                        * *coef as f64
                        * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2.0 * y as f64 + 1.0) * w as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            *v = sum;
        }
    }
    out
}

// Memory layout of the constant tables written by `prepare`:
//   COEF          : C row-major (C[k][x]), 64 halfwords
//   COEF + 0x100  : C columns (column r = C[0..8][r]), 8 × 16 bytes
//   COEF + 0x400  : MOM splat matrices W_r (row k = splat4(C[k][r])), 8 × 64 bytes
const COEF_COLS: u64 = COEF + 0x100;
const COEF_SPLAT: u64 = COEF + 0x400;
/// Row pitch of the 8×8 halfword blocks in memory.
const PITCH: i64 = 16;

/// The `idct` kernel.
pub struct Idct;

impl Idct {
    fn build_alpha(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Alpha);
        // Two passes; pass `p` reads from `src`, stores its result transposed
        // into `dst` (element [r][c] is stored at [c][r]).
        for (src, dst, shift) in [(SRC_A, SCRATCH, PASS1_SHIFT), (SCRATCH, DST, PASS2_SHIFT)] {
            b.li(1, src as i64);
            b.li(2, dst as i64);
            b.li(3, COEF as i64);
            b.li(28, 32767);
            b.li(29, -32768);
            b.li(10, 8); // r counter
            b.li(11, 0); // r index
            b.label(&format!("p{shift}_row"));
            // Hoist the eight C[k][r] coefficients for this output row.
            // &C[k][r] = COEF + (8k + r)*2
            b.slli(5, 11, 1);
            b.add(5, 5, 3);
            for k in 0..8u8 {
                b.load(MemSize::Half, true, 20 + k, 5, (16 * k) as i64);
            }
            b.li(12, 8); // c counter
            b.li(13, 0); // c index
            b.label(&format!("p{shift}_col"));
            // &X[k][c] = src + 16k + 2c
            b.slli(6, 13, 1);
            b.add(6, 6, 1);
            b.li(7, 0);
            for k in 0..8u8 {
                b.load(MemSize::Half, true, 8, 6, (16 * k) as i64);
                b.mul(8, 8, 20 + k);
                b.add(7, 7, 8);
            }
            b.addi(7, 7, 1 << (shift - 1));
            b.srai(7, 7, shift as i64);
            b.alu(AluOp::CmpLt, 9, 28, 7);
            b.alu(AluOp::CmovNz, 7, 9, 28);
            b.alu(AluOp::CmpLt, 9, 7, 29);
            b.alu(AluOp::CmovNz, 7, 9, 29);
            // Store transposed: &dst[c][r] = dst + 16c + 2r
            b.slli(9, 13, 4);
            b.add(9, 9, 2);
            b.slli(14, 11, 1);
            b.add(9, 9, 14);
            b.store(MemSize::Half, 7, 9, 0);
            b.addi(13, 13, 1);
            b.addi(12, 12, -1);
            b.branch(BranchCond::Gt, 12, 31, &format!("p{shift}_col"));
            b.addi(11, 11, 1);
            b.addi(10, 10, -1);
            b.branch(BranchCond::Gt, 10, 31, &format!("p{shift}_row"));
        }
        b.finish()
    }

    /// Emits the classic in-register 4×4 halfword transpose: `rows` are four
    /// MMX registers holding 4 halfwords each; results land in `out`.
    fn emit_mmx_transpose4(b: &mut AsmBuilder, rows: [u8; 4], out: [u8; 4], tmp: [u8; 4]) {
        b.mmx_op(PackedOp::UnpackLow, ElemType::I16, tmp[0], rows[0], rows[1]);
        b.mmx_op(
            PackedOp::UnpackHigh,
            ElemType::I16,
            tmp[1],
            rows[0],
            rows[1],
        );
        b.mmx_op(PackedOp::UnpackLow, ElemType::I16, tmp[2], rows[2], rows[3]);
        b.mmx_op(
            PackedOp::UnpackHigh,
            ElemType::I16,
            tmp[3],
            rows[2],
            rows[3],
        );
        b.mmx_op(PackedOp::UnpackLow, ElemType::I32, out[0], tmp[0], tmp[2]);
        b.mmx_op(PackedOp::UnpackHigh, ElemType::I32, out[1], tmp[0], tmp[2]);
        b.mmx_op(PackedOp::UnpackLow, ElemType::I32, out[2], tmp[1], tmp[3]);
        b.mmx_op(PackedOp::UnpackHigh, ElemType::I32, out[3], tmp[1], tmp[3]);
    }

    /// Shared structure of the MMX and MDMX versions: transpose the input in
    /// registers, then two element-wise dot-product passes. The `mdmx` flag
    /// switches the reduction between pmaddwd/hsum and the packed
    /// accumulator.
    fn build_mmx_like(&self, isa: IsaKind) -> Program {
        let mdmx = isa == IsaKind::Mdmx;
        let mut b = AsmBuilder::new(isa);
        b.li(28, 32767);
        b.li(29, -32768);

        // ---- load the input block and transpose it in registers ----
        // v0..v15: row k left half in v(2k), right half in v(2k+1).
        b.li(1, SRC_A as i64);
        for k in 0..8u8 {
            b.mmx_load(2 * k, 1, (16 * k) as i64, ElemType::I16);
            b.mmx_load(2 * k + 1, 1, (16 * k) as i64 + 8, ElemType::I16);
        }
        // Transpose: quadrants A (rows 0-3, left), B (rows 0-3, right),
        // C (rows 4-7, left), D (rows 4-7, right).
        // Xᵀ rows 0-3 = [Aᵀ | Cᵀ], rows 4-7 = [Bᵀ | Dᵀ]; afterwards
        // v(2c)/v(2c+1) hold column c of the original block.
        Self::emit_mmx_transpose4(&mut b, [0, 2, 4, 6], [16, 18, 20, 22], [24, 25, 26, 27]); // Aᵀ
        Self::emit_mmx_transpose4(&mut b, [8, 10, 12, 14], [17, 19, 21, 23], [24, 25, 26, 27]); // Cᵀ
        Self::emit_mmx_transpose4(&mut b, [1, 3, 5, 7], [0, 2, 4, 6], [24, 25, 26, 27]); // Bᵀ
        Self::emit_mmx_transpose4(&mut b, [9, 11, 13, 15], [1, 3, 5, 7], [24, 25, 26, 27]); // Dᵀ
                                                                                            // Move Bᵀ/Dᵀ into the odd destinations and Aᵀ/Cᵀ back into the even
                                                                                            // ones so that v(2c), v(2c+1) = column c (low half, high half).
        for c in 0..4u8 {
            b.mmx_op(PackedOp::Or, ElemType::I16, 8 + 2 * c, 2 * c, 2 * c); // save Bᵀ row
            b.mmx_op(PackedOp::Or, ElemType::I16, 9 + 2 * c, 1 + 2 * c, 1 + 2 * c);
            // save Dᵀ row
        }
        for c in 0..4u8 {
            b.mmx_op(PackedOp::Or, ElemType::I16, 2 * c, 16 + 2 * c, 16 + 2 * c); // Aᵀ
            b.mmx_op(
                PackedOp::Or,
                ElemType::I16,
                2 * c + 1,
                17 + 2 * c,
                17 + 2 * c,
            ); // Cᵀ
        }

        // ---- pass 1: P1[r][c] = colpass(in); store row-major to SCRATCH ----
        // ---- pass 2: out[c][r] = colpass(P1ᵀ)[r][c]; store transposed to DST
        for (pass, shift) in [(0u8, PASS1_SHIFT), (1u8, PASS2_SHIFT)] {
            b.li(2, COEF_COLS as i64);
            b.li(
                3,
                if pass == 0 {
                    SCRATCH as i64
                } else {
                    DST as i64
                },
            );
            if pass == 1 {
                b.li(1, SCRATCH as i64);
            }
            for r in 0..8u8 {
                // C column r (the eight C[k][r]) as two halfword words.
                b.mmx_load(30, 2, (16 * r) as i64, ElemType::I16);
                b.mmx_load(31, 2, (16 * r) as i64 + 8, ElemType::I16);
                for c in 0..8u8 {
                    // The k-vector: pass 1 uses input column c (in registers
                    // after the transpose); pass 2 uses P1 row c (from memory).
                    let (lo, hi) = if pass == 0 {
                        (2 * c, 2 * c + 1)
                    } else {
                        b.mmx_load(24, 1, (16 * c) as i64, ElemType::I16);
                        b.mmx_load(25, 1, (16 * c) as i64 + 8, ElemType::I16);
                        (24, 25)
                    };
                    if mdmx {
                        b.acc_clear(0);
                        b.acc_step(AccumOp::MulAdd, ElemType::I16, 0, lo, 30);
                        b.acc_step(AccumOp::MulAdd, ElemType::I16, 0, hi, 31);
                        b.acc_read_scalar(7, 0);
                    } else {
                        b.mmx_op(PackedOp::MaddPairs, ElemType::I16, 26, lo, 30);
                        b.mmx_op(PackedOp::MaddPairs, ElemType::I16, 27, hi, 31);
                        b.mmx_op(PackedOp::Add(Overflow::Wrap), ElemType::I32, 26, 26, 27);
                        b.mmx_op(PackedOp::HSum, ElemType::I32, 26, 26, 26);
                        b.mmx_to_int(7, 26);
                    }
                    b.addi(7, 7, 1 << (shift - 1));
                    b.srai(7, 7, shift as i64);
                    b.alu(AluOp::CmpLt, 9, 28, 7);
                    b.alu(AluOp::CmovNz, 7, 9, 28);
                    b.alu(AluOp::CmpLt, 9, 7, 29);
                    b.alu(AluOp::CmovNz, 7, 9, 29);
                    // Pass 1 stores P1 row-major; pass 2 stores the final
                    // result transposed (out[c][r]).
                    let offset = if pass == 0 {
                        (16 * r + 2 * c) as i64
                    } else {
                        (16 * c + 2 * r) as i64
                    };
                    b.store(MemSize::Half, 7, 3, offset);
                }
            }
        }
        b.finish()
    }

    /// Emits the 8×8 halfword transpose of the matrix held in registers
    /// (`l`, `h`) into (`out_l`, `out_h`), using matrix temporaries `t` and
    /// `s` and MMX register 1, via four 4×4 `MomTranspose` blocks.
    #[allow(clippy::too_many_arguments)]
    fn emit_mom_transpose8(b: &mut AsmBuilder, l: u8, h: u8, out_l: u8, out_h: u8, t: u8, s: u8) {
        // out_l rows 0-3 = Aᵀ (A = l rows 0-3).
        b.mom_transpose(out_l, l, ElemType::I16);
        // t rows 0-3 = Bᵀ (B = h rows 0-3); move into out_l rows 4-7.
        b.mom_transpose(t, h, ElemType::I16);
        for j in 0..4u8 {
            b.mom_row_to_mmx(1, t, j);
            b.mom_row_from_mmx(out_l, 1, 4 + j);
        }
        // s rows 0-3 = C (l rows 4-7); out_h rows 0-3 = Cᵀ.
        for j in 0..4u8 {
            b.mom_row_to_mmx(1, l, 4 + j);
            b.mom_row_from_mmx(s, 1, j);
        }
        b.mom_transpose(out_h, s, ElemType::I16);
        // s rows 0-3 = D (h rows 4-7); t rows 0-3 = Dᵀ; move into out_h 4-7.
        for j in 0..4u8 {
            b.mom_row_to_mmx(1, h, 4 + j);
            b.mom_row_from_mmx(s, 1, j);
        }
        b.mom_transpose(t, s, ElemType::I16);
        for j in 0..4u8 {
            b.mom_row_to_mmx(1, t, j);
            b.mom_row_from_mmx(out_h, 1, 4 + j);
        }
    }

    fn build_mom(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mom);
        // Matrix register allocation:
        //   M0/M1   input halves (columns 0-3 / 4-7), later the transposed
        //           intermediate,
        //   M2/M3   pass results,
        //   M4/M5   transpose temporaries, M6/M7 final transposed output,
        //   M8-M15  the eight constant splat-coefficient matrices W_r.
        b.li(1, SRC_A as i64);
        b.li(2, PITCH);
        b.li(3, 8);
        b.set_vl_imm(8);
        // Hoist the eight W_r matrices.
        for r in 0..8u8 {
            b.li(4, (COEF_SPLAT + 64 * r as u64) as i64);
            b.mom_load(8 + r, 4, 3, ElemType::I16);
        }
        // Load the input block halves.
        b.li(5, SRC_A as i64 + 8);
        b.mom_load(0, 1, 2, ElemType::I16);
        b.mom_load(1, 5, 2, ElemType::I16);
        // Two column passes with a transpose in between.
        for (pass, shift) in [(0u8, PASS1_SHIFT), (1u8, PASS2_SHIFT)] {
            for r in 0..8u8 {
                for half in 0..2u8 {
                    b.mom_acc_clear(0);
                    b.mom_acc_step(
                        AccumOp::MulAdd,
                        ElemType::I16,
                        0,
                        half,
                        MomOperand::Mat(8 + r),
                    );
                    b.mom_acc_read(2, 0, ElemType::I16, shift, true);
                    b.mom_row_from_mmx(2 + half, 2, r);
                }
            }
            if pass == 0 {
                // Feed pass 2 with the transposed intermediate.
                Self::emit_mom_transpose8(&mut b, 2, 3, 0, 1, 4, 5);
            }
        }
        // Final transpose and store.
        Self::emit_mom_transpose8(&mut b, 2, 3, 6, 7, 4, 5);
        b.li(6, DST as i64);
        b.li(7, DST as i64 + 8);
        b.mom_store(6, 6, 2, ElemType::I16);
        b.mom_store(7, 7, 2, ElemType::I16);
        b.finish()
    }
}

impl KernelSpec for Idct {
    fn id(&self) -> KernelId {
        KernelId::Idct
    }

    fn prepare(&self, mem: &mut Memory, seed: u64) {
        let block = dct_block(seed);
        for (r, row) in block.iter().enumerate() {
            mem.load_i16_slice(SRC_A + (PITCH as u64) * r as u64, row)
                .unwrap();
        }
        let c = basis();
        // Row-major C.
        for (k, row) in c.iter().enumerate() {
            mem.load_i16_slice(COEF + 16 * k as u64, row).unwrap();
        }
        // Column-major C (column r contiguous).
        for r in 0..8 {
            let col: Vec<i16> = c.iter().map(|row| row[r]).collect();
            mem.load_i16_slice(COEF_COLS + 16 * r as u64, &col).unwrap();
        }
        // MOM splat matrices: W_r row k = splat4(C[k][r]).
        for r in 0..8 {
            for (k, row) in c.iter().enumerate() {
                let w = from_lanes(&[row[r] as i64; 4], ElemType::I16);
                mem.write_u64(COEF_SPLAT + 64 * r as u64 + 8 * k as u64, w)
                    .unwrap();
            }
        }
    }

    fn program(&self, isa: IsaKind) -> Program {
        match isa {
            IsaKind::Alpha => self.build_alpha(),
            IsaKind::Mmx | IsaKind::Mdmx => self.build_mmx_like(isa),
            IsaKind::Mom => self.build_mom(),
        }
    }

    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
        let block = dct_block(seed);
        let expect = reference(&block);
        for (r, expect_row) in expect.iter().enumerate() {
            let got = mem.dump_i16(DST + (PITCH as u64) * r as u64, 8).unwrap();
            for (c, (g, e)) in got.iter().zip(expect_row).enumerate() {
                if g != e {
                    return Err(mismatch("idct output", 8 * r + c, *e, *g));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::verify_kernel;

    #[test]
    fn basis_is_orthonormal_in_fixed_point() {
        let c = basis();
        // CᵀC ≈ 2^26 · I within fixed-point rounding error.
        for i in 0..8 {
            for j in 0..8 {
                let dot: i64 = (0..8).map(|k| c[k][i] as i64 * c[k][j] as i64).sum();
                let expect = if i == j { 1i64 << 26 } else { 0 };
                assert!(
                    (dot - expect).abs() < 1 << 17,
                    "basis column dot ({i},{j}) = {dot}"
                );
            }
        }
    }

    #[test]
    fn fixed_point_reference_tracks_floating_point() {
        for seed in [1u64, 5, 42] {
            let block = dct_block(seed);
            let fixed = reference(&block);
            let float = reference_f64(&block);
            for r in 0..8 {
                for c in 0..8 {
                    let err = (fixed[r][c] as f64 - float[r][c]).abs();
                    assert!(
                        err <= 2.0,
                        "seed {seed} ({r},{c}): fixed {} vs float {:.2}",
                        fixed[r][c],
                        float[r][c]
                    );
                }
            }
        }
    }

    #[test]
    fn dc_only_block_produces_flat_output() {
        let mut block = [[0i16; 8]; 8];
        block[0][0] = 256;
        let out = reference(&block);
        let expect = out[0][0];
        assert!(out.iter().flatten().all(|&v| (v - expect).abs() <= 1));
        assert!(expect > 0);
    }

    #[test]
    fn all_isas_match_reference() {
        for isa in IsaKind::ALL {
            for seed in [5, 77] {
                verify_kernel(KernelId::Idct, isa, seed)
                    .unwrap_or_else(|e| panic!("idct/{isa} seed {seed}: {e}"));
            }
        }
    }
}
