//! `comp` — motion-compensation blending (mpeg2 decode).
//!
//! Bidirectional motion compensation averages a forward and a backward
//! prediction block with rounding:
//!
//! ```text
//! out[r][c] = (fwd[r][c] + bwd[r][c] + 1) >> 1      for a 16×16 block
//! ```
//!
//! The prediction blocks live inside a larger reference frame (row pitch
//! [`FRAME_PITCH`]); the output block is written densely (pitch 16).

use crate::harness::{mismatch, KernelSpec, Mismatch};
use crate::layout::{DST, FRAME_PITCH, SRC_A, SRC_B};
use crate::workload::pixel_block;
use crate::KernelId;
use mom_arch::Memory;
use mom_isa::prelude::*;

/// Block width and height in pixels.
pub const BLOCK: usize = 16;

/// Golden reference: rounding average of two blocks.
pub fn reference(fwd: &[u8], bwd: &[u8], pitch: usize) -> Vec<u8> {
    let mut out = vec![0u8; BLOCK * BLOCK];
    for r in 0..BLOCK {
        for c in 0..BLOCK {
            let a = fwd[r * pitch + c] as u16;
            let b = bwd[r * pitch + c] as u16;
            out[r * BLOCK + c] = ((a + b + 1) >> 1) as u8;
        }
    }
    out
}

/// The `comp` kernel.
pub struct Compensation;

impl Compensation {
    fn build_alpha(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Alpha);
        // r1 = &fwd, r2 = &bwd, r3 = &out, r10 = row counter, r11 = col counter
        b.li(1, SRC_A as i64);
        b.li(2, SRC_B as i64);
        b.li(3, DST as i64);
        b.li(10, BLOCK as i64);
        b.label("row");
        b.li(11, BLOCK as i64);
        b.label("col");
        b.load(MemSize::Byte, false, 5, 1, 0);
        b.load(MemSize::Byte, false, 6, 2, 0);
        b.add(7, 5, 6);
        b.addi(7, 7, 1);
        b.srai(7, 7, 1);
        b.store(MemSize::Byte, 7, 3, 0);
        b.addi(1, 1, 1);
        b.addi(2, 2, 1);
        b.addi(3, 3, 1);
        b.addi(11, 11, -1);
        b.branch(BranchCond::Gt, 11, 31, "col");
        b.addi(1, 1, FRAME_PITCH as i64 - BLOCK as i64);
        b.addi(2, 2, FRAME_PITCH as i64 - BLOCK as i64);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "row");
        b.finish()
    }

    /// The MMX and MDMX versions are identical (there is no reduction for
    /// the accumulators to help with), as the paper's Table 6 reflects.
    fn build_mmx(&self, isa: IsaKind) -> Program {
        let mut b = AsmBuilder::new(isa);
        b.li(1, SRC_A as i64);
        b.li(2, SRC_B as i64);
        b.li(3, DST as i64);
        b.li(10, BLOCK as i64);
        b.label("row");
        // Two 8-pixel words per 16-pixel row; the row body is unrolled.
        for half in 0..2 {
            let off = 8 * half;
            b.mmx_load(0, 1, off, ElemType::U8);
            b.mmx_load(1, 2, off, ElemType::U8);
            b.mmx_op(PackedOp::Avg, ElemType::U8, 2, 0, 1);
            b.mmx_store(2, 3, off, ElemType::U8);
        }
        b.addi(1, 1, FRAME_PITCH as i64);
        b.addi(2, 2, FRAME_PITCH as i64);
        b.addi(3, 3, BLOCK as i64);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "row");
        b.finish()
    }

    fn build_mom(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mom);
        // r1 = &fwd, r2 = &bwd, r3 = &out, r4 = frame pitch, r5 = output pitch
        b.li(1, SRC_A as i64);
        b.li(2, SRC_B as i64);
        b.li(3, DST as i64);
        b.li(4, FRAME_PITCH as i64);
        b.li(5, BLOCK as i64);
        b.set_vl_imm(BLOCK as u8);
        for half in 0..2u8 {
            let off = 8 * half as i64;
            // Rebase the pointers for the second 8-pixel column strip.
            if half == 1 {
                b.addi(1, 1, off);
                b.addi(2, 2, off);
                b.addi(3, 3, off);
            }
            b.mom_load(0, 1, 4, ElemType::U8);
            b.mom_load(1, 2, 4, ElemType::U8);
            b.mom_op(PackedOp::Avg, ElemType::U8, 2, 0, MomOperand::Mat(1));
            b.mom_store(2, 3, 5, ElemType::U8);
        }
        b.finish()
    }
}

impl KernelSpec for Compensation {
    fn id(&self) -> KernelId {
        KernelId::Compensation
    }

    fn prepare(&self, mem: &mut Memory, seed: u64) {
        let fwd = pixel_block(seed, BLOCK, BLOCK, FRAME_PITCH as usize);
        let bwd = pixel_block(seed ^ 0xB1D, BLOCK, BLOCK, FRAME_PITCH as usize);
        mem.load_u8_slice(SRC_A, &fwd.data).unwrap();
        mem.load_u8_slice(SRC_B, &bwd.data).unwrap();
    }

    fn program(&self, isa: IsaKind) -> Program {
        match isa {
            IsaKind::Alpha => self.build_alpha(),
            IsaKind::Mmx | IsaKind::Mdmx => self.build_mmx(isa),
            IsaKind::Mom => self.build_mom(),
        }
    }

    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
        let fwd = pixel_block(seed, BLOCK, BLOCK, FRAME_PITCH as usize);
        let bwd = pixel_block(seed ^ 0xB1D, BLOCK, BLOCK, FRAME_PITCH as usize);
        let expect = reference(&fwd.data, &bwd.data, FRAME_PITCH as usize);
        let got = mem.dump_u8(DST, BLOCK * BLOCK).unwrap();
        for (i, (e, g)) in expect.iter().zip(got.iter()).enumerate() {
            if e != g {
                return Err(mismatch("comp output", i, *e, *g));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::verify_kernel;

    #[test]
    fn reference_rounds_up() {
        let fwd = vec![10u8; 256];
        let bwd = vec![11u8; 256];
        let out = reference(&fwd, &bwd, 16);
        assert!(out.iter().all(|&v| v == 11));
    }

    #[test]
    fn all_isas_match_reference() {
        for isa in IsaKind::ALL {
            for seed in [1, 7, 99] {
                verify_kernel(KernelId::Compensation, isa, seed)
                    .unwrap_or_else(|e| panic!("comp/{isa} seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn mom_executes_an_order_of_magnitude_fewer_instructions_than_scalar() {
        let scalar = crate::run_kernel(KernelId::Compensation, IsaKind::Alpha, 5, 1)
            .unwrap()
            .trace
            .len();
        let mom = crate::run_kernel(KernelId::Compensation, IsaKind::Mom, 5, 1)
            .unwrap()
            .trace
            .len();
        assert!(scalar > 50 * mom, "scalar {scalar} vs MOM {mom}");
    }

    #[test]
    fn mmx_and_mdmx_are_identical_programs() {
        let mmx = Compensation.program(IsaKind::Mmx);
        let mdmx = Compensation.program(IsaKind::Mdmx);
        assert_eq!(mmx.len(), mdmx.len());
    }
}
