//! `rgb2ycc` — RGB → YCbCr colour conversion (jpeg encode).
//!
//! Planar 8-bit R/G/B inputs are converted to planar 8-bit Y/Cb/Cr using the
//! usual fixed-point weights (scaled by 256):
//!
//! ```text
//! Y  = round((77·R + 150·G +  29·B) / 256)
//! Cb = round((32768 - 43·R -  85·G + 128·B) / 256)      (bias 128 folded in)
//! Cr = round((32768 + 128·R - 107·G -  21·B) / 256)
//! ```
//!
//! where `round(x/256) = (x + 128) >> 8`. All weighted sums are non-negative
//! by construction. The paper singles this kernel out as the one where MOM
//! gains little: the natural MOM vectorisation runs along the colour-space
//! dimension, so the dimension-Y vector length is only ≈3 (the bias row adds
//! a fourth).

use crate::harness::{mismatch, KernelSpec, Mismatch};
use crate::layout::{COEF, DST, SRC_A};
use crate::workload::rgb_planes;
use crate::KernelId;
use mom_arch::Memory;
use mom_isa::prelude::*;
use mom_simd::lanes::from_lanes;

/// Number of pixels converted per invocation.
pub const PIXELS: usize = 64;
/// Byte offset between the R, G and B (and Y, Cb, Cr) planes.
pub const PLANE: u64 = 256;

/// The three weight rows (R, G, B) and the additive bias of each output
/// component.
pub const WEIGHTS: [([i64; 3], i64); 3] = [
    ([77, 150, 29], 0),
    ([-43, -85, 128], 32768),
    ([128, -107, -21], 32768),
];

/// Golden reference.
pub fn reference(r: &[u8], g: &[u8], b: &[u8]) -> [Vec<u8>; 3] {
    let mut out = [vec![0u8; PIXELS], vec![0u8; PIXELS], vec![0u8; PIXELS]];
    for i in 0..PIXELS {
        for (comp, (w, bias)) in WEIGHTS.iter().enumerate() {
            let sum = w[0] * r[i] as i64 + w[1] * g[i] as i64 + w[2] * b[i] as i64 + bias;
            debug_assert!(sum >= 0);
            out[comp][i] = (((sum + 128) >> 8).clamp(0, 255)) as u8;
        }
    }
    out
}

/// The `rgb2ycc` kernel.
pub struct Rgb2Ycc;

impl Rgb2Ycc {
    fn build_alpha(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Alpha);
        // r1 = &R, r2 = &G, r3 = &B, r4 = &Y, r10 = counter
        b.li(1, SRC_A as i64);
        b.li(2, (SRC_A + PLANE) as i64);
        b.li(3, (SRC_A + 2 * PLANE) as i64);
        b.li(4, DST as i64);
        b.li(10, PIXELS as i64);
        b.label("pixel");
        b.load(MemSize::Byte, false, 5, 1, 0); // R
        b.load(MemSize::Byte, false, 6, 2, 0); // G
        b.load(MemSize::Byte, false, 7, 3, 0); // B
        for (comp, (w, bias)) in WEIGHTS.iter().enumerate() {
            b.muli(8, 5, w[0]);
            b.muli(9, 6, w[1]);
            b.add(8, 8, 9);
            b.muli(9, 7, w[2]);
            b.add(8, 8, 9);
            if *bias != 0 {
                b.addi(8, 8, *bias);
            }
            b.addi(8, 8, 128);
            b.srai(8, 8, 8);
            b.store(MemSize::Byte, 8, 4, comp as i64 * PLANE as i64);
        }
        b.addi(1, 1, 1);
        b.addi(2, 2, 1);
        b.addi(3, 3, 1);
        b.addi(4, 4, 1);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "pixel");
        b.finish()
    }

    /// Packs the halfword pair `(lo, hi, lo, hi)` into one 64-bit constant,
    /// the operand layout `pmaddwd`-style multiply-add expects.
    fn pair_word(lo: i64, hi: i64) -> i64 {
        from_lanes(&[lo, hi, lo, hi], ElemType::I16) as i64
    }

    /// The MMX version interleaves R with G and B with a constant-1 lane so
    /// that `pmaddwd` produces exact 32-bit weighted sums — the classic
    /// data-promotion overhead the paper attributes to MMX.
    fn build_mmx(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mmx);
        b.li(1, SRC_A as i64);
        b.li(2, (SRC_A + PLANE) as i64);
        b.li(3, (SRC_A + 2 * PLANE) as i64);
        b.li(4, DST as i64);
        // Hoisted coefficient pair words: (wR, wG) and (wB, (bias+128)/2).
        // B is paired with a constant 2 below, so the bias lane contributes
        // the full `bias + 128` (rounding included) while staying within the
        // signed halfword range.
        for (comp, (w, bias)) in WEIGHTS.iter().enumerate() {
            b.li(20, Self::pair_word(w[0], w[1]));
            b.mmx_from_int(20 + comp as u8, 20);
            b.li(20, Self::pair_word(w[2], (bias + 128) / 2));
            b.mmx_from_int(23 + comp as u8, 20);
        }
        // A halfword 2 in every lane, to pair with B.
        b.li(20, 2);
        b.mmx_splat(9, 20, ElemType::I16);
        b.li(10, (PIXELS / 8) as i64);
        b.label("group");
        b.mmx_load(0, 1, 0, ElemType::U8); // R x8
        b.mmx_load(1, 2, 0, ElemType::U8); // G x8
        b.mmx_load(2, 3, 0, ElemType::U8); // B x8
                                           // Widen to 16 bits.
        b.mmx_op(PackedOp::WidenLow, ElemType::U8, 3, 0, 0);
        b.mmx_op(PackedOp::WidenHigh, ElemType::U8, 4, 0, 0);
        b.mmx_op(PackedOp::WidenLow, ElemType::U8, 5, 1, 1);
        b.mmx_op(PackedOp::WidenHigh, ElemType::U8, 6, 1, 1);
        b.mmx_op(PackedOp::WidenLow, ElemType::U8, 7, 2, 2);
        b.mmx_op(PackedOp::WidenHigh, ElemType::U8, 8, 2, 2);
        // Interleave R with G, and B with the constant 2, as 16-bit pairs.
        b.mmx_op(PackedOp::UnpackLow, ElemType::I16, 10, 3, 5); // (R,G) pixels 0-1
        b.mmx_op(PackedOp::UnpackHigh, ElemType::I16, 11, 3, 5); // pixels 2-3
        b.mmx_op(PackedOp::UnpackLow, ElemType::I16, 12, 4, 6); // pixels 4-5
        b.mmx_op(PackedOp::UnpackHigh, ElemType::I16, 13, 4, 6); // pixels 6-7
        b.mmx_op(PackedOp::UnpackLow, ElemType::I16, 14, 7, 9); // (B,1) pixels 0-1
        b.mmx_op(PackedOp::UnpackHigh, ElemType::I16, 15, 7, 9);
        b.mmx_op(PackedOp::UnpackLow, ElemType::I16, 16, 8, 9);
        b.mmx_op(PackedOp::UnpackHigh, ElemType::I16, 17, 8, 9);
        for (comp, _) in WEIGHTS.iter().enumerate() {
            let rg_coef = 20 + comp as u8;
            let bb_coef = 23 + comp as u8;
            // Each quarter produces two 32-bit sums (two pixels).
            for (quarter, &(rg, bb)) in [(10u8, 14u8), (11, 15), (12, 16), (13, 17)]
                .iter()
                .enumerate()
            {
                b.mmx_op(PackedOp::MaddPairs, ElemType::I16, 18, rg, rg_coef);
                b.mmx_op(PackedOp::MaddPairs, ElemType::I16, 19, bb, bb_coef);
                b.mmx_op(
                    PackedOp::Add(Overflow::Wrap),
                    ElemType::I32,
                    26 + quarter as u8,
                    18,
                    19,
                );
                b.mmx_op(
                    PackedOp::SraImm(8),
                    ElemType::I32,
                    26 + quarter as u8,
                    26 + quarter as u8,
                    26 + quarter as u8,
                );
            }
            // Narrow 8 x i32 -> 8 x i16 -> 8 x u8 and store the plane row.
            b.mmx_op(PackedOp::PackSat(ElemType::I16), ElemType::I32, 30, 26, 27);
            b.mmx_op(PackedOp::PackSat(ElemType::I16), ElemType::I32, 31, 28, 29);
            b.mmx_op(PackedOp::PackSat(ElemType::U8), ElemType::I16, 30, 30, 31);
            b.mmx_store(30, 4, comp as i64 * PLANE as i64, ElemType::U8);
        }
        b.addi(1, 1, 8);
        b.addi(2, 2, 8);
        b.addi(3, 3, 8);
        b.addi(4, 4, 8);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "group");
        b.finish()
    }

    /// The MDMX version replaces the pmaddwd interleaving with accumulator
    /// steps (one per weight), keeping full precision without data
    /// promotion of the products.
    fn build_mdmx(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mdmx);
        b.li(1, SRC_A as i64);
        b.li(2, (SRC_A + PLANE) as i64);
        b.li(3, (SRC_A + 2 * PLANE) as i64);
        b.li(4, DST as i64);
        // Hoisted weight splats: v20..v28 = the nine weights, v29 = 256,
        // v30 = 128 (so 256 * 128 adds the 32768 bias).
        for (comp, (w, _)) in WEIGHTS.iter().enumerate() {
            for (j, &wj) in w.iter().enumerate() {
                b.li(20, wj);
                b.mmx_splat(20 + 3 * comp as u8 + j as u8, 20, ElemType::I16);
            }
        }
        b.li(20, 256);
        b.mmx_splat(29, 20, ElemType::I16);
        b.li(20, 128);
        b.mmx_splat(30, 20, ElemType::I16);
        b.li(10, (PIXELS / 8) as i64);
        b.label("group");
        b.mmx_load(0, 1, 0, ElemType::U8);
        b.mmx_load(1, 2, 0, ElemType::U8);
        b.mmx_load(2, 3, 0, ElemType::U8);
        b.mmx_op(PackedOp::WidenLow, ElemType::U8, 3, 0, 0);
        b.mmx_op(PackedOp::WidenHigh, ElemType::U8, 4, 0, 0);
        b.mmx_op(PackedOp::WidenLow, ElemType::U8, 5, 1, 1);
        b.mmx_op(PackedOp::WidenHigh, ElemType::U8, 6, 1, 1);
        b.mmx_op(PackedOp::WidenLow, ElemType::U8, 7, 2, 2);
        b.mmx_op(PackedOp::WidenHigh, ElemType::U8, 8, 2, 2);
        for (comp, (_, bias)) in WEIGHTS.iter().enumerate() {
            let c0 = 20 + 3 * comp as u8;
            for half in 0..2u8 {
                let (r, g, bb) = (3 + half, 5 + half, 7 + half);
                b.acc_clear(0);
                b.acc_step(AccumOp::MulAdd, ElemType::I16, 0, r, c0);
                b.acc_step(AccumOp::MulAdd, ElemType::I16, 0, g, c0 + 1);
                b.acc_step(AccumOp::MulAdd, ElemType::I16, 0, bb, c0 + 2);
                if *bias != 0 {
                    b.acc_step(AccumOp::MulAdd, ElemType::I16, 0, 29, 30);
                }
                b.acc_read(14 + half, 0, ElemType::I16, 8, true);
            }
            b.mmx_op(PackedOp::PackSat(ElemType::U8), ElemType::I16, 16, 14, 15);
            b.mmx_store(16, 4, comp as i64 * PLANE as i64, ElemType::U8);
        }
        b.addi(1, 1, 8);
        b.addi(2, 2, 8);
        b.addi(3, 3, 8);
        b.addi(4, 4, 8);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "group");
        b.finish()
    }

    /// The MOM version vectorises along the colour-space dimension: the data
    /// matrix rows are R, G, B and a constant bias row (VL = 4), and each
    /// output component has a constant coefficient matrix whose rows are the
    /// splatted weights.
    fn build_mom(&self) -> Program {
        let mut b = AsmBuilder::new(IsaKind::Mom);
        b.li(1, SRC_A as i64);
        b.li(4, DST as i64);
        b.li(5, PLANE as i64); // data stride: rows are the R, G, B, bias planes
        b.li(6, 8); // coefficient matrix row stride
        b.set_vl_imm(4);
        // Hoist the three constant coefficient matrices.
        for comp in 0..3u8 {
            b.li(7, (COEF + 32 * comp as u64) as i64);
            b.mom_load(10 + comp, 7, 6, ElemType::I16);
        }
        b.li(10, (PIXELS / 8) as i64);
        b.label("group");
        b.mom_load(0, 1, 5, ElemType::U8); // rows: R, G, B, bias constant
        b.mom_op(PackedOp::WidenLow, ElemType::U8, 1, 0, MomOperand::Mat(0));
        b.mom_op(PackedOp::WidenHigh, ElemType::U8, 2, 0, MomOperand::Mat(0));
        for comp in 0..3u8 {
            for half in 0..2u8 {
                b.mom_acc_clear(0);
                b.mom_acc_step(
                    AccumOp::MulAdd,
                    ElemType::I16,
                    0,
                    1 + half,
                    MomOperand::Mat(10 + comp),
                );
                b.mom_acc_read(4 + half, 0, ElemType::I16, 8, true);
            }
            b.mmx_op(PackedOp::PackSat(ElemType::U8), ElemType::I16, 6, 4, 5);
            b.mmx_store(6, 4, comp as i64 * PLANE as i64, ElemType::U8);
        }
        b.addi(1, 1, 8);
        b.addi(4, 4, 8);
        b.addi(10, 10, -1);
        b.branch(BranchCond::Gt, 10, 31, "group");
        b.finish()
    }
}

impl KernelSpec for Rgb2Ycc {
    fn id(&self) -> KernelId {
        KernelId::Rgb2Ycc
    }

    fn prepare(&self, mem: &mut Memory, seed: u64) {
        let (r, g, b) = rgb_planes(seed, PIXELS);
        mem.load_u8_slice(SRC_A, &r).unwrap();
        mem.load_u8_slice(SRC_A + PLANE, &g).unwrap();
        mem.load_u8_slice(SRC_A + 2 * PLANE, &b).unwrap();
        // Fourth data row for the MOM variant: the constant 2 in every lane.
        // Its weight below is bias/2, so the accumulated term is the full
        // 32768 bias without needing a weight that exceeds the i16 range.
        mem.load_u8_slice(SRC_A + 3 * PLANE, &[2u8; PIXELS])
            .unwrap();
        // MOM coefficient matrices: per component, four rows of splatted
        // halfword weights (R, G, B, bias/2).
        for (comp, (w, bias)) in WEIGHTS.iter().enumerate() {
            let base = COEF + 32 * comp as u64;
            for (j, &wj) in w.iter().enumerate() {
                let row = from_lanes(&[wj, wj, wj, wj], ElemType::I16);
                mem.write_u64(base + 8 * j as u64, row).unwrap();
            }
            let half_bias = bias / 2;
            let row = from_lanes(&[half_bias; 4], ElemType::I16);
            mem.write_u64(base + 24, row).unwrap();
        }
    }

    fn program(&self, isa: IsaKind) -> Program {
        match isa {
            IsaKind::Alpha => self.build_alpha(),
            IsaKind::Mmx => self.build_mmx(),
            IsaKind::Mdmx => self.build_mdmx(),
            IsaKind::Mom => self.build_mom(),
        }
    }

    fn verify(&self, mem: &Memory, seed: u64) -> Result<(), Mismatch> {
        let (r, g, b) = rgb_planes(seed, PIXELS);
        let expect = reference(&r, &g, &b);
        for (comp, plane) in expect.iter().enumerate() {
            let got = mem.dump_u8(DST + comp as u64 * PLANE, PIXELS).unwrap();
            for (i, (e, g)) in plane.iter().zip(got.iter()).enumerate() {
                if e != g {
                    return Err(mismatch(&format!("rgb2ycc component {comp}"), i, *e, *g));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::verify_kernel;

    #[test]
    fn reference_grey_pixel_maps_to_neutral_chroma() {
        let r = vec![128u8; PIXELS];
        let g = vec![128u8; PIXELS];
        let b = vec![128u8; PIXELS];
        let out = reference(&r, &g, &b);
        assert_eq!(out[0][0], 128);
        assert_eq!(out[1][0], 128);
        assert_eq!(out[2][0], 128);
    }

    #[test]
    fn reference_weights_sum_correctly() {
        // Pure white: Y = 255, chroma neutral.
        let out = reference(&[255; PIXELS], &[255; PIXELS], &[255; PIXELS]);
        assert_eq!(out[0][0], 255);
        assert_eq!(out[1][0], 128);
        assert_eq!(out[2][0], 128);
        // Pure black: Y = 0, chroma neutral.
        let out = reference(&[0; PIXELS], &[0; PIXELS], &[0; PIXELS]);
        assert_eq!(out[0][0], 0);
        assert_eq!(out[1][0], 128);
        assert_eq!(out[2][0], 128);
    }

    #[test]
    fn all_isas_match_reference() {
        for isa in IsaKind::ALL {
            for seed in [6, 45] {
                verify_kernel(KernelId::Rgb2Ycc, isa, seed)
                    .unwrap_or_else(|e| panic!("rgb2ycc/{isa} seed {seed}: {e}"));
            }
        }
    }
}
