//! The fixed memory map kernels use inside the simulated machine.
//!
//! Every kernel reads its inputs and writes its outputs at well-known
//! addresses so that the four ISA variants of a kernel are trivially
//! comparable and verification can dump the same region regardless of ISA.

/// Total size of the simulated memory given to kernels (1 MiB).
pub const MEMORY_SIZE: usize = 1 << 20;

/// First input region (e.g. the current macroblock, the DCT coefficient
/// block, the reference samples).
pub const SRC_A: u64 = 0x1_0000;

/// Second input region (e.g. the reference macroblock, the prediction
/// block, the filter input).
pub const SRC_B: u64 = 0x2_0000;

/// Third input region (constants: coefficient tables, splat matrices,
/// filter taps).
pub const COEF: u64 = 0x3_0000;

/// Output region.
pub const DST: u64 = 0x4_0000;

/// Scratch region for intermediates spilled by a kernel.
pub const SCRATCH: u64 = 0x5_0000;

/// Row pitch, in bytes, of the simulated video frame the motion and
/// compensation kernels index into (pixels of a CIF-sized luma plane).
pub const FRAME_PITCH: u64 = 384;

/// Version of the seeded workload *generators* (`crate::workload`), mixed
/// into the trace-store content hash alongside the layout constants below.
/// Bump it when a generator's output changes for an unchanged seed, so
/// persisted traces recorded against the old data are never served again.
pub const WORKLOAD_VERSION: u32 = 1;

/// Feeds everything about the workload's memory layout that a persisted
/// trace depends on into a content hash: trace entries carry absolute
/// addresses derived from these constants, so changing any of them must
/// change every trace-store key.
pub fn fingerprint(h: &mut mom_store::Hasher) {
    h.write_u32(WORKLOAD_VERSION);
    h.write_usize(MEMORY_SIZE);
    h.write_u64(SRC_A);
    h.write_u64(SRC_B);
    h.write_u64(COEF);
    h.write_u64(DST);
    h.write_u64(SCRATCH);
    h.write_u64(FRAME_PITCH);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_inside_memory() {
        let regions = [SRC_A, SRC_B, COEF, DST, SCRATCH];
        for w in regions.windows(2) {
            assert!(w[1] >= w[0] + 0x1_0000, "regions must not overlap");
        }
        assert!((SCRATCH as usize) + 0x1_0000 <= MEMORY_SIZE);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn frame_pitch_holds_a_macroblock_row() {
        assert!(FRAME_PITCH >= 16);
        assert_eq!(FRAME_PITCH % 8, 0, "pitch must keep rows 8-byte aligned");
    }
}
