//! # mom-kernels — the paper's nine Mediabench kernels in four ISAs
//!
//! The SC'99 MOM paper evaluates nine kernels extracted (by profiling) from
//! six Mediabench programs — `mpeg encode/decode`, `jpeg encode/decode` and
//! `gsm encode/decode` — each hand-coded three times (MMX-like, MDMX-like
//! and MOM) on top of the compiled scalar baseline.  This crate reproduces
//! that methodology:
//!
//! | kernel | source program | operation |
//! |--------|----------------|-----------|
//! | `idct` | mpeg/jpeg decode | 8×8 inverse discrete cosine transform |
//! | `motion1` | mpeg encode | 16×16 sum of absolute differences (motion estimation) |
//! | `motion2` | mpeg encode | 16×16 sum of squared differences |
//! | `rgb2ycc` | jpeg encode | RGB → YCbCr colour conversion |
//! | `h2v2` | jpeg decode | 2×2 chroma upsampling |
//! | `comp` | mpeg decode | saturated blending (motion compensation) |
//! | `addblock` | mpeg decode | saturated residual add (motion compensation) |
//! | `ltppar` | gsm encode | long-term-predictor cross-correlation search |
//! | `ltpsfilt` | gsm decode | long-term / short-term FIR filtering |
//!
//! For every kernel the crate provides
//!
//! * a **golden scalar Rust reference** (the bit-exact specification),
//! * **four program generators** — scalar "Alpha-like", MMX, MDMX and MOM —
//!   built with [`mom_isa::AsmBuilder`] (these stand in for the paper's
//!   hand-written emulation-library calls),
//! * a **synthetic workload generator** producing deterministic,
//!   Mediabench-shaped inputs (pixel blocks, colour planes, PCM frames),
//! * a [`harness`] that loads the workload into a functional [`Machine`],
//!   runs the program, verifies every iteration's output against the
//!   reference, and **streams** the dynamic instruction trace into any
//!   [`TraceSink`] (timing simulator, statistics fold, fan-out) so that
//!   memory stays bounded regardless of the iteration count.
//!
//! [`Machine`]: mom_arch::Machine
//! [`TraceSink`]: mom_arch::TraceSink

#![warn(missing_docs)]

pub mod harness;
pub mod kernels;
pub mod layout;
pub mod trace_cache;
pub mod workload;

pub use harness::{
    app_machine, functional_executions, run_kernel, run_kernel_with_sink, run_phase_with_sink,
    verify_kernel, KernelError, KernelRun, KernelSpec, Mismatch,
};
use mom_isa::IsaKind;
pub use trace_cache::{shared_kernel_run, shared_kernel_run_in, trace_content_key};

/// Identifier of one of the paper's nine kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelId {
    /// 8×8 inverse DCT (mpeg/jpeg decode).
    Idct,
    /// 16×16 sum of absolute differences (mpeg encode motion estimation).
    Motion1,
    /// 16×16 sum of squared differences (mpeg encode motion estimation).
    Motion2,
    /// RGB → YCbCr colour conversion (jpeg encode).
    Rgb2Ycc,
    /// 2×2 chroma upsampling (jpeg decode).
    H2v2,
    /// Saturated blending of two prediction blocks (mpeg decode motion
    /// compensation).
    Compensation,
    /// Saturated addition of the IDCT residual to the prediction (mpeg
    /// decode motion compensation).
    AddBlock,
    /// Long-term-predictor parameter search (gsm encode).
    LtpPar,
    /// Long-term / short-term filtering (gsm decode).
    LtpFilt,
}

impl KernelId {
    /// All nine kernels, in the order the paper's figures present them.
    pub const ALL: [KernelId; 9] = [
        KernelId::Idct,
        KernelId::Motion2,
        KernelId::Rgb2Ycc,
        KernelId::Motion1,
        KernelId::H2v2,
        KernelId::AddBlock,
        KernelId::Compensation,
        KernelId::LtpPar,
        KernelId::LtpFilt,
    ];

    /// Iterates over all nine kernels in figure order — the enumeration
    /// entry point for experiment axes ([`KernelId::ALL`] as an iterator).
    pub fn all() -> impl Iterator<Item = KernelId> {
        Self::ALL.into_iter()
    }

    /// The kernel's name as used in the paper's figures and tables.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::Idct => "idct",
            KernelId::Motion1 => "motion1",
            KernelId::Motion2 => "motion2",
            KernelId::Rgb2Ycc => "rgb2ycc",
            KernelId::H2v2 => "h2v2",
            KernelId::Compensation => "comp",
            KernelId::AddBlock => "addblock",
            KernelId::LtpPar => "ltppar",
            KernelId::LtpFilt => "ltpsfilt",
        }
    }

    /// The Mediabench program the kernel was extracted from.
    pub fn source_program(self) -> &'static str {
        match self {
            KernelId::Idct => "mpeg2 / jpeg decode",
            KernelId::Motion1 | KernelId::Motion2 => "mpeg2 encode",
            KernelId::Rgb2Ycc => "jpeg encode",
            KernelId::H2v2 => "jpeg decode",
            KernelId::Compensation | KernelId::AddBlock => "mpeg2 decode",
            KernelId::LtpPar => "gsm encode",
            KernelId::LtpFilt => "gsm decode",
        }
    }

    /// One-line description of the operation, for `momsim list`-style
    /// inventories.
    pub fn description(self) -> &'static str {
        match self {
            KernelId::Idct => "8x8 inverse discrete cosine transform",
            KernelId::Motion1 => "16x16 sum of absolute differences (motion estimation)",
            KernelId::Motion2 => "16x16 sum of squared differences (motion estimation)",
            KernelId::Rgb2Ycc => "RGB to YCbCr colour conversion",
            KernelId::H2v2 => "2x2 chroma upsampling",
            KernelId::Compensation => "saturated blending of two prediction blocks",
            KernelId::AddBlock => "saturated residual add (motion compensation)",
            KernelId::LtpPar => "long-term-predictor cross-correlation search",
            KernelId::LtpFilt => "long-term / short-term FIR filtering",
        }
    }

    /// Looks a kernel up by its paper name.
    pub fn from_name(name: &str) -> Option<KernelId> {
        KernelId::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// The kernel's specification object (reference, program generators,
    /// workload preparation and verification).
    pub fn spec(self) -> Box<dyn KernelSpec> {
        kernels::spec(self)
    }

    /// Convenience: builds the program of this kernel for a given ISA.
    pub fn program(self, isa: IsaKind) -> mom_isa::Program {
        self.spec().program(isa)
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a kernel name cannot be parsed; its `Display` lists
/// the valid names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelIdError {
    got: String,
}

impl std::fmt::Display for ParseKernelIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kernel '{}' (valid: {})",
            self.got,
            KernelId::ALL.map(KernelId::name).join(", ")
        )
    }
}

impl std::error::Error for ParseKernelIdError {}

impl std::str::FromStr for KernelId {
    type Err = ParseKernelIdError;

    /// Parses a kernel axis name (the paper's figure labels),
    /// case-insensitively.
    ///
    /// ```
    /// use mom_kernels::KernelId;
    /// assert_eq!("idct".parse(), Ok(KernelId::Idct));
    /// assert_eq!("COMP".parse(), Ok(KernelId::Compensation));
    /// assert!("fft".parse::<KernelId>().unwrap_err().to_string().contains("motion1"));
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KernelId::from_name(s.trim().to_ascii_lowercase().as_str())
            .ok_or_else(|| ParseKernelIdError { got: s.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_have_unique_names() {
        use std::collections::HashSet;
        let names: HashSet<_> = KernelId::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), KernelId::ALL.len());
    }

    #[test]
    fn from_name_round_trips() {
        for k in KernelId::ALL {
            assert_eq!(KernelId::from_name(k.name()), Some(k));
        }
        assert_eq!(KernelId::from_name("nonexistent"), None);
    }

    #[test]
    fn display_and_from_str_round_trip() {
        for k in KernelId::all() {
            assert_eq!(k.to_string().parse(), Ok(k), "round trip {k}");
            assert_eq!(k.name().to_ascii_uppercase().parse(), Ok(k));
            assert!(!k.description().is_empty());
        }
        assert_eq!(KernelId::all().count(), KernelId::ALL.len());
    }

    #[test]
    fn parse_errors_name_the_valid_kernels() {
        let err = "fft".parse::<KernelId>().unwrap_err().to_string();
        for name in ["fft", "idct", "ltpsfilt", "comp"] {
            assert!(err.contains(name), "{err:?} should mention {name}");
        }
    }

    #[test]
    fn source_programs_cover_the_mediabench_suite() {
        let programs: std::collections::HashSet<_> =
            KernelId::ALL.iter().map(|k| k.source_program()).collect();
        assert!(programs.len() >= 5);
    }
}
