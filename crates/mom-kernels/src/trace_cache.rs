//! The shared functional-trace cache: each (kernel, ISA, seed) triple is
//! executed — and verified against its golden reference — **once per
//! process**, and every consumer after that replays the memoised
//! single-invocation trace by reference.
//!
//! This is the paper's own methodology made explicit in the architecture:
//! the functional run is decoupled from the timing runs, so one instruction
//! stream can drive any number of machine configurations.  A kernel's
//! iterations are identical instruction streams (the workloads have no
//! data-dependent control flow) and a kernel phase run on a shared
//! application machine produces the same trace as a fresh-machine run
//! (every kernel program initialises the registers it reads and loads its
//! own workload first), so the single cached invocation is the whole story:
//! `momsim sweep`, repeated experiments in one process and the multi-kernel
//! application pipelines all replay the same [`KernelRun`]s instead of
//! re-executing the functional simulator.
//!
//! The cache is thread safe and contention free in the steady state: the
//! outer map is a [`RwLock`] — steady-state lookups of already-inserted
//! slots take the **read** lock and run fully in parallel; the write lock
//! is taken only to insert a slot the read path did not find.  The
//! (potentially slow) functional run happens inside the slot's
//! [`OnceLock`], outside either lock, so concurrent sweep workers filling
//! *different* keys never serialise each other, while two workers racing on
//! the *same* key run the kernel exactly once.

use crate::harness::{run_kernel, KernelError, KernelRun};
use crate::KernelId;
use mom_isa::IsaKind;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// A memoised functional run: one verified invocation.
type Slot = Arc<OnceLock<Result<Arc<KernelRun>, KernelError>>>;

/// The cache table type: per-(kernel, ISA, seed) fill-once slots.
type Table = RwLock<HashMap<(KernelId, IsaKind, u64), Slot>>;

/// The process-wide cache table.
fn table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Returns the verified single-invocation [`KernelRun`] of
/// `(kernel, isa, seed)`, executing the functional simulator only the first
/// time the triple is requested in this process.
///
/// The returned run always has `invocations == 1`; replay it as many times
/// as the consumer's steady-state target needs
/// (`run.trace.replay_into(n, sink)`).  Errors (verification mismatches,
/// execution faults) are memoised too, so a broken kernel fails fast on
/// every lookup instead of re-running.
pub fn shared_kernel_run(
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
) -> Result<Arc<KernelRun>, KernelError> {
    let key = (kernel, isa, seed);
    // Steady-state fast path: a shared read lock, taken and released before
    // any (slow) kernel execution.
    let found = {
        let table = table().read().expect("trace-cache table poisoned");
        table.get(&key).cloned()
    };
    let slot = match found {
        Some(slot) => slot,
        None => {
            let mut table = table().write().expect("trace-cache table poisoned");
            table.entry(key).or_default().clone()
        }
    };
    slot.get_or_init(|| run_kernel(kernel, isa, seed, 1).map(Arc::new))
        .clone()
}

/// Number of (kernel, ISA, seed) triples resolved so far — successful or
/// failed — in this process.  Diagnostic; used by tests and `momsim bench`
/// to report cache effectiveness.
pub fn cached_runs() -> usize {
    table()
        .read()
        .expect("trace-cache table poisoned")
        .values()
        .filter(|slot| slot.get().is_some())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_run_matches_a_fresh_run_and_is_the_same_allocation() {
        let seed = 0x1234;
        let a = shared_kernel_run(KernelId::AddBlock, IsaKind::Mom, seed).unwrap();
        let fresh = run_kernel(KernelId::AddBlock, IsaKind::Mom, seed, 1).unwrap();
        assert_eq!(a.invocations, 1);
        assert_eq!(a.trace.entries(), fresh.trace.entries());
        assert_eq!(a.stats, fresh.stats);
        // A second lookup is the same memoised allocation, not a re-run.
        let b = shared_kernel_run(KernelId::AddBlock, IsaKind::Mom, seed).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert!(cached_runs() >= 1);
    }

    #[test]
    fn distinct_seeds_are_distinct_entries() {
        let a = shared_kernel_run(KernelId::Motion1, IsaKind::Mmx, 1).unwrap();
        let b = shared_kernel_run(KernelId::Motion1, IsaKind::Mmx, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        // Different seeds produce different workloads but the same program,
        // so the instruction count matches while the traces may differ in
        // operand-dependent metadata.
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn concurrent_lookups_of_one_key_run_the_kernel_once() {
        let seed = 0x77;
        let runs: Vec<_> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    scope.spawn(move || {
                        shared_kernel_run(KernelId::Compensation, IsaKind::Mdmx, seed).unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|w| w.join().unwrap())
                .collect()
        });
        for run in &runs[1..] {
            assert!(
                Arc::ptr_eq(&runs[0], run),
                "all threads must share one memoised run"
            );
        }
    }

    #[test]
    fn concurrent_fills_of_distinct_keys_interleave_with_read_lookups() {
        // Writers fill distinct seeds while readers hammer a key that is
        // already resolved: the read path must keep returning the same
        // memoised allocation throughout, and every writer's fill must land.
        let hot_seed = 0x9000;
        let hot = shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed).unwrap();
        let fills = 6;
        std::thread::scope(|scope| {
            let writers: Vec<_> = (0..fills)
                .map(|i| {
                    scope.spawn(move || {
                        shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed + 1 + i)
                            .unwrap()
                    })
                })
                .collect();
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let hot = &hot;
                    scope.spawn(move || {
                        for _ in 0..50 {
                            let again =
                                shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed)
                                    .unwrap();
                            assert!(Arc::ptr_eq(hot, &again));
                        }
                    })
                })
                .collect();
            for w in writers {
                assert_eq!(w.join().unwrap().invocations, 1);
            }
            for r in readers {
                r.join().unwrap();
            }
        });
        // Every distinct key resolved exactly once and stayed cached.
        for i in 0..fills {
            let a = shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed + 1 + i).unwrap();
            let b = shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed + 1 + i).unwrap();
            assert!(Arc::ptr_eq(&a, &b));
        }
    }
}
