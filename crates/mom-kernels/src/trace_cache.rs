//! The shared functional-trace cache: each (kernel, ISA, seed) triple is
//! executed — and verified against its golden reference — **once**, and
//! every consumer after that replays the memoised single-invocation trace
//! by reference.
//!
//! This is the paper's own methodology made explicit in the architecture:
//! the functional run is decoupled from the timing runs, so one instruction
//! stream can drive any number of machine configurations.  A kernel's
//! iterations are identical instruction streams (the workloads have no
//! data-dependent control flow) and a kernel phase run on a shared
//! application machine produces the same trace as a fresh-machine run
//! (every kernel program initialises the registers it reads and loads its
//! own workload first), so the single cached invocation is the whole story:
//! `momsim sweep`, repeated experiments in one process and the multi-kernel
//! application pipelines all replay the same [`KernelRun`]s instead of
//! re-executing the functional simulator.
//!
//! Since PR 7 the cache is the **memory tier** of the persistent artifact
//! store ([`mom_store`]): a verified run is also encoded
//! ([`mom_arch::codec`]) and written to the store's disk tier under a
//! **content hash** of everything the trace depends on — the disassembled
//! program text (so codegen changes self-invalidate without a version
//! knob), the kernel, the ISA, the seed, and the workload-layout
//! fingerprint ([`crate::layout::fingerprint`]).  The next process starts
//! warm: a lookup decodes the blob and **re-verifies it before first use**
//! (recomputed stats must match the stored stats, and the entry stream
//! must replay as a valid control-flow walk of the *current* program);
//! anything corrupt, truncated or stale is treated as a miss and silently
//! recomputed.
//!
//! Error memoisation is deliberately asymmetric: *deterministic* failures
//! (a program that fails validation, a golden-reference mismatch) are
//! memoised in the process slot so a broken kernel fails fast, but
//! *transient* execution faults are *not* — the next lookup retries — and
//! **no** error of any kind is ever persisted to disk.
//!
//! The cache is thread safe and contention free in the steady state: the
//! outer map is a [`RwLock`] — steady-state lookups of already-resolved
//! slots take the **read** lock and run fully in parallel; the write lock
//! is taken only to insert a slot the read path did not find.  The
//! (potentially slow) fill happens under the slot's own mutex, outside
//! either table lock, so concurrent sweep workers filling *different* keys
//! never serialise each other, while two workers racing on the *same* key
//! run the kernel exactly once.

use crate::harness::{run_kernel, KernelError, KernelRun};
use crate::{layout, KernelId};
use mom_arch::codec;
use mom_isa::{Instruction, IsaKind, Program};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use mom_store::{Hasher, Key, Store, NS_TRACE};

/// Fill state of one (kernel, ISA, seed) slot.
enum SlotState {
    /// Not resolved yet (or last attempt hit a transient fault — retry).
    Empty,
    /// Verified run, shared by reference.
    Ready(Arc<KernelRun>),
    /// Deterministic failure, memoised so every lookup fails fast.
    Failed(KernelError),
}

/// One per-key slot; the mutex serialises racing fills of the same key.
type Slot = Arc<Mutex<SlotState>>;

/// The cache table type: per-(kernel, ISA, seed) slots.
type Table = RwLock<HashMap<(KernelId, IsaKind, u64), Slot>>;

/// The process-wide cache table.
fn table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// The content hash addressing `(kernel, isa, seed)`'s trace in the
/// persistent store: disassembled program text, kernel name, ISA name,
/// seed, and the workload-layout fingerprint.  Pure — computing it never
/// executes the kernel.
pub fn trace_content_key(kernel: KernelId, isa: IsaKind, seed: u64) -> Key {
    let program = kernel.program(isa);
    let mut h = Hasher::new();
    h.write_str("momsim trace");
    h.write_str(&mom_isa::disassemble(&program));
    h.write_str(kernel.name());
    h.write_str(&isa.to_string());
    h.write_u64(seed);
    layout::fingerprint(&mut h);
    h.finish()
}

/// Verification-on-load: a decoded trace is accepted only if its entry
/// stream replays as a valid control-flow walk of the *current* program —
/// every entry must match the instruction at the walked pc, taken branches
/// must follow their resolved targets, and the walk must run the program to
/// completion.  This is the golden reference for a trace (the trace *is*
/// the recorded execution path); together with the recomputed-stats check
/// it rejects any blob whose damage survived the store's checksum, and any
/// blob recorded against a different program than the one compiled today.
fn trace_matches_program(trace: &mom_arch::Trace, program: &Program) -> bool {
    let instrs = program.instructions();
    let mut pc = 0usize;
    for entry in trace.iter() {
        match instrs.get(pc) {
            Some(instr) if *instr == entry.instr => {}
            _ => return false,
        }
        pc = match entry.instr {
            Instruction::Branch { target, .. } if entry.taken => program.resolve(target),
            _ => pc + 1,
        };
    }
    pc >= instrs.len()
}

/// Tries to serve `(kernel, isa, seed)` from the store's disk tier.
/// Any failure — no blob, codec error, failed verification — is a miss.
fn load_from_store(
    store: &Store,
    key: Key,
    kernel: KernelId,
    isa: IsaKind,
) -> Option<Arc<KernelRun>> {
    let bytes = store.get_disk(NS_TRACE, key)?;
    let _span = mom_obs::span_fmt("decode", || format!("decode-trace {kernel:?}/{isa:?}"));
    let (trace, stats) = codec::decode_trace(&bytes).ok()?;
    if trace.stats() != stats {
        return None;
    }
    let program = kernel.program(isa);
    if !trace_matches_program(&trace, &program) {
        return None;
    }
    Some(Arc::new(KernelRun {
        kernel,
        isa,
        trace,
        invocations: 1,
        stats,
    }))
}

/// Runs the kernel, persists a success to the store's disk tier, and
/// decides what to memoise: successes and deterministic errors stick,
/// transient execution faults leave the slot empty for a retry. Errors are
/// never written to disk.
fn fill(
    store: &Store,
    key: Key,
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
) -> (SlotState, Result<Arc<KernelRun>, KernelError>) {
    let _span = mom_obs::span_fmt("functional", || format!("fill-trace {kernel:?}/{isa:?}"));
    match run_kernel(kernel, isa, seed, 1) {
        Ok(run) => {
            let run = Arc::new(run);
            store.put_disk(NS_TRACE, key, &codec::encode_trace(&run.trace, &run.stats));
            (SlotState::Ready(Arc::clone(&run)), Ok(run))
        }
        Err(err @ (KernelError::InvalidProgram { .. } | KernelError::Mismatch { .. })) => {
            (SlotState::Failed(err.clone()), Err(err))
        }
        Err(err) => (SlotState::Empty, Err(err)),
    }
}

/// Returns the verified single-invocation [`KernelRun`] of
/// `(kernel, isa, seed)`, executing the functional simulator only if
/// neither the process memory tier nor the persistent store already holds
/// the trace.
///
/// The returned run always has `invocations == 1`; replay it as many times
/// as the consumer's steady-state target needs
/// (`run.trace.replay_into(n, sink)`).  Deterministic errors (program
/// validation failures, verification mismatches) are memoised so a broken
/// kernel fails fast on every lookup; transient execution faults are
/// retried on the next lookup and never memoised or persisted.
pub fn shared_kernel_run(
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
) -> Result<Arc<KernelRun>, KernelError> {
    shared_kernel_run_in(mom_store::global(), kernel, isa, seed)
}

/// [`shared_kernel_run`] against an explicit store — the testing seam for
/// the disk tier. The process memory tier is still shared.
pub fn shared_kernel_run_in(
    store: &Store,
    kernel: KernelId,
    isa: IsaKind,
    seed: u64,
) -> Result<Arc<KernelRun>, KernelError> {
    let table_key = (kernel, isa, seed);
    // Steady-state fast path: a shared read lock, taken and released before
    // any (slow) kernel execution.
    let found = {
        let table = table().read().expect("trace-cache table poisoned");
        table.get(&table_key).cloned()
    };
    let slot = match found {
        Some(slot) => slot,
        None => {
            let mut table = table().write().expect("trace-cache table poisoned");
            table
                .entry(table_key)
                .or_insert_with(|| Arc::new(Mutex::new(SlotState::Empty)))
                .clone()
        }
    };
    let mut state = slot.lock().expect("trace-cache slot poisoned");
    match &*state {
        SlotState::Ready(run) => {
            store.note_memory_hit(NS_TRACE);
            return Ok(Arc::clone(run));
        }
        SlotState::Failed(err) => return Err(err.clone()),
        SlotState::Empty => {}
    }
    let key = trace_content_key(kernel, isa, seed);
    if let Some(run) = load_from_store(store, key, kernel, isa) {
        *state = SlotState::Ready(Arc::clone(&run));
        return Ok(run);
    }
    let (next, result) = fill(store, key, kernel, isa, seed);
    *state = next;
    result
}

/// Number of (kernel, ISA, seed) triples resolved so far — successful or
/// failed — in this process.  Diagnostic; the persistent-store view
/// (memory/disk hits, fills, bytes) is `mom_store::global().report()`.
pub fn cached_runs() -> usize {
    table()
        .read()
        .expect("trace-cache table poisoned")
        .values()
        .filter(|slot| {
            !matches!(
                &*slot.lock().expect("trace-cache slot poisoned"),
                SlotState::Empty
            )
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_store() -> (Store, PathBuf) {
        static UNIQUE: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mom-trace-cache-test-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        (Store::new(Some(dir.clone())), dir)
    }

    #[test]
    fn shared_run_matches_a_fresh_run_and_is_the_same_allocation() {
        let seed = 0x1234;
        let a = shared_kernel_run(KernelId::AddBlock, IsaKind::Mom, seed).unwrap();
        let fresh = run_kernel(KernelId::AddBlock, IsaKind::Mom, seed, 1).unwrap();
        assert_eq!(a.invocations, 1);
        assert_eq!(a.trace.entries(), fresh.trace.entries());
        assert_eq!(a.stats, fresh.stats);
        // A second lookup is the same memoised allocation, not a re-run.
        let b = shared_kernel_run(KernelId::AddBlock, IsaKind::Mom, seed).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert!(cached_runs() >= 1);
    }

    #[test]
    fn distinct_seeds_are_distinct_entries() {
        let a = shared_kernel_run(KernelId::Motion1, IsaKind::Mmx, 1).unwrap();
        let b = shared_kernel_run(KernelId::Motion1, IsaKind::Mmx, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        // Different seeds produce different workloads but the same program,
        // so the instruction count matches while the traces may differ in
        // operand-dependent metadata.
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn content_keys_separate_kernels_isas_and_seeds() {
        let base = trace_content_key(KernelId::Idct, IsaKind::Mom, 7);
        assert_eq!(base, trace_content_key(KernelId::Idct, IsaKind::Mom, 7));
        assert_ne!(base, trace_content_key(KernelId::Idct, IsaKind::Mmx, 7));
        assert_ne!(base, trace_content_key(KernelId::Motion1, IsaKind::Mom, 7));
        assert_ne!(base, trace_content_key(KernelId::Idct, IsaKind::Mom, 8));
    }

    #[test]
    fn disk_blob_round_trips_through_verification() {
        let (store, dir) = temp_store();
        let seed = 0xD15C;
        let first = shared_kernel_run_in(&store, KernelId::Rgb2Ycc, IsaKind::Mdmx, seed).unwrap();
        let key = trace_content_key(KernelId::Rgb2Ycc, IsaKind::Mdmx, seed);
        let loaded = load_from_store(&store, key, KernelId::Rgb2Ycc, IsaKind::Mdmx)
            .expect("persisted blob must load and verify");
        assert_eq!(loaded.trace.entries(), first.trace.entries());
        assert_eq!(loaded.stats, first.stats);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn a_foreign_trace_fails_verification_on_load() {
        // Store a *valid* trace of one kernel under another kernel's key:
        // the checksum passes, the codec passes, but the control-flow walk
        // against the current program must reject it.
        let (store, dir) = temp_store();
        let seed = 0xF0E1;
        let donor = run_kernel(KernelId::AddBlock, IsaKind::Alpha, seed, 1).unwrap();
        let key = trace_content_key(KernelId::Idct, IsaKind::Alpha, seed);
        store.put_disk(
            NS_TRACE,
            key,
            &codec::encode_trace(&donor.trace, &donor.stats),
        );
        assert!(
            load_from_store(&store, key, KernelId::Idct, IsaKind::Alpha).is_none(),
            "a trace of a different program must be treated as a miss"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn verification_accepts_only_consistent_stats() {
        let (store, dir) = temp_store();
        let seed = 0xBAD5;
        let run = run_kernel(KernelId::H2v2, IsaKind::Mmx, seed, 1).unwrap();
        let key = trace_content_key(KernelId::H2v2, IsaKind::Mmx, seed);
        let mut wrong = run.stats;
        wrong.operations += 1;
        store.put_disk(NS_TRACE, key, &codec::encode_trace(&run.trace, &wrong));
        assert!(
            load_from_store(&store, key, KernelId::H2v2, IsaKind::Mmx).is_none(),
            "stats inconsistent with the decoded trace must be a miss"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_lookups_of_one_key_run_the_kernel_once() {
        let seed = 0x77;
        let runs: Vec<_> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    scope.spawn(move || {
                        shared_kernel_run(KernelId::Compensation, IsaKind::Mdmx, seed).unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|w| w.join().unwrap())
                .collect()
        });
        for run in &runs[1..] {
            assert!(
                Arc::ptr_eq(&runs[0], run),
                "all threads must share one memoised run"
            );
        }
    }

    #[test]
    fn concurrent_fills_of_distinct_keys_interleave_with_read_lookups() {
        // Writers fill distinct seeds while readers hammer a key that is
        // already resolved: the read path must keep returning the same
        // memoised allocation throughout, and every writer's fill must land.
        let hot_seed = 0x9000;
        let hot = shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed).unwrap();
        let fills = 6;
        std::thread::scope(|scope| {
            let writers: Vec<_> = (0..fills)
                .map(|i| {
                    scope.spawn(move || {
                        shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed + 1 + i)
                            .unwrap()
                    })
                })
                .collect();
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let hot = &hot;
                    scope.spawn(move || {
                        for _ in 0..50 {
                            let again =
                                shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed)
                                    .unwrap();
                            assert!(Arc::ptr_eq(hot, &again));
                        }
                    })
                })
                .collect();
            for w in writers {
                assert_eq!(w.join().unwrap().invocations, 1);
            }
            for r in readers {
                r.join().unwrap();
            }
        });
        // Every distinct key resolved exactly once and stayed cached.
        for i in 0..fills {
            let a = shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed + 1 + i).unwrap();
            let b = shared_kernel_run(KernelId::AddBlock, IsaKind::Mmx, hot_seed + 1 + i).unwrap();
            assert!(Arc::ptr_eq(&a, &b));
        }
    }
}
