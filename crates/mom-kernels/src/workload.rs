//! Synthetic, deterministic workload generators.
//!
//! The paper drives its kernels with the Mediabench inputs (video sequences,
//! JPEG images, GSM speech).  Those media files are not redistributable and
//! are irrelevant to instruction counts beyond their value ranges and
//! shapes, so this module generates deterministic pseudo-random data with
//! exactly the shapes and ranges the kernels consume:
//!
//! * 8-bit pixel blocks and planes (0..=255) with mild spatial correlation,
//!   as a video frame or photograph would have,
//! * 12-bit signed DCT coefficient blocks, sparse towards high frequencies,
//!   as produced by quantised MPEG/JPEG encoding,
//! * 16-bit PCM speech-like samples for the GSM kernels.
//!
//! All generators take an explicit seed so every experiment is reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic RNG used by all generators.
fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A rectangular 8-bit pixel region with an explicit row pitch, modelling a
/// window into a larger video frame or image plane.
#[derive(Debug, Clone)]
pub struct PixelBlock {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row pitch in bytes of the backing storage (≥ width).
    pub pitch: usize,
    /// Pixel data, `height * pitch` bytes.
    pub data: Vec<u8>,
}

impl PixelBlock {
    /// Pixel at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> u8 {
        self.data[row * self.pitch + col]
    }
}

/// Generates a pixel block with mild spatial correlation (neighbouring
/// pixels differ by a bounded random step), which is what natural images
/// look like to these kernels.
pub fn pixel_block(seed: u64, width: usize, height: usize, pitch: usize) -> PixelBlock {
    assert!(pitch >= width, "pitch must cover the block width");
    let mut r = rng(seed);
    let mut data = vec![0u8; height * pitch];
    let mut prev_row: Vec<i32> = (0..width).map(|_| r.random_range(0..=255)).collect();
    for row in 0..height {
        let mut left: i32 = prev_row[0];
        for col in 0..width {
            let base = (prev_row[col] + left) / 2;
            let value = (base + r.random_range(-24..=24)).clamp(0, 255);
            data[row * pitch + col] = value as u8;
            left = value;
            prev_row[col] = value;
        }
    }
    PixelBlock {
        width,
        height,
        pitch,
        data,
    }
}

/// Generates an 8×8 block of quantised DCT coefficients: a large DC value,
/// AC energy decaying towards high frequencies and many zeros, as an MPEG or
/// JPEG decoder sees after inverse quantisation.
pub fn dct_block(seed: u64) -> [[i16; 8]; 8] {
    let mut r = rng(seed);
    let mut block = [[0i16; 8]; 8];
    block[0][0] = r.random_range(-1024..=1024);
    for (u, row) in block.iter_mut().enumerate() {
        for (v, coef) in row.iter_mut().enumerate() {
            if u == 0 && v == 0 {
                continue;
            }
            let zigzag = u + v;
            // Probability of a non-zero coefficient and its magnitude both
            // drop with frequency, as in quantised natural-image blocks.
            let occupancy = 0.9_f64 / (1.0 + zigzag as f64);
            if r.random_bool(occupancy) {
                let magnitude = (512 >> zigzag.min(9)).max(4);
                *coef = r.random_range(-magnitude..=magnitude) as i16;
            }
        }
    }
    block
}

/// Generates `n` 16-bit PCM samples resembling voiced speech: a sum of a few
/// low-frequency oscillations plus noise, scaled to roughly 13 significant
/// bits (the GSM full-rate range).
pub fn pcm_samples(seed: u64, n: usize) -> Vec<i16> {
    let mut r = rng(seed);
    let f1 = r.random_range(0.01..0.08);
    let f2 = r.random_range(0.002..0.02);
    let a1 = r.random_range(1500.0..3500.0);
    let a2 = r.random_range(500.0..1500.0);
    (0..n)
        .map(|i| {
            let t = i as f64;
            let s = a1 * (f1 * t).sin() + a2 * (f2 * t + 1.3).sin() + r.random_range(-200.0..200.0);
            s.clamp(-4095.0, 4095.0) as i16
        })
        .collect()
}

/// Generates three separate colour planes (R, G, B) of `n` pixels each, with
/// the correlation between channels a natural photo has.
pub fn rgb_planes(seed: u64, n: usize) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let mut r = rng(seed);
    let mut red = Vec::with_capacity(n);
    let mut green = Vec::with_capacity(n);
    let mut blue = Vec::with_capacity(n);
    let mut luma: i32 = r.random_range(0..=255);
    for _ in 0..n {
        luma = (luma + r.random_range(-20..=20)).clamp(0, 255);
        let chroma_r = r.random_range(-40..=40);
        let chroma_b = r.random_range(-40..=40);
        red.push((luma + chroma_r).clamp(0, 255) as u8);
        green.push(luma as u8);
        blue.push((luma + chroma_b).clamp(0, 255) as u8);
    }
    (red, green, blue)
}

/// Generates a block of signed 16-bit residual values in the range an MPEG
/// IDCT produces (−256..=255).
pub fn residual_block(seed: u64, n: usize) -> Vec<i16> {
    let mut r = rng(seed);
    (0..n).map(|_| r.random_range(-256..=255)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            pixel_block(7, 16, 16, 32).data,
            pixel_block(7, 16, 16, 32).data
        );
        assert_eq!(dct_block(7), dct_block(7));
        assert_eq!(pcm_samples(7, 100), pcm_samples(7, 100));
        assert_eq!(rgb_planes(7, 64), rgb_planes(7, 64));
        assert_eq!(residual_block(7, 64), residual_block(7, 64));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            pixel_block(1, 16, 16, 16).data,
            pixel_block(2, 16, 16, 16).data
        );
        assert_ne!(pcm_samples(1, 64), pcm_samples(2, 64));
    }

    #[test]
    fn pixel_block_respects_pitch_and_range() {
        let b = pixel_block(3, 16, 8, 64);
        assert_eq!(b.data.len(), 8 * 64);
        assert_eq!(b.at(0, 0), b.data[0]);
        assert_eq!(b.at(1, 2), b.data[64 + 2]);
    }

    #[test]
    fn dct_block_is_sparse_and_bounded() {
        let b = dct_block(11);
        let nonzero = b.iter().flatten().filter(|&&c| c != 0).count();
        assert!(nonzero < 40, "quantised blocks are mostly zero: {nonzero}");
        for row in &b {
            for &c in row {
                assert!((-1024..=1024).contains(&(c as i32)));
            }
        }
    }

    #[test]
    fn pcm_samples_look_like_speech() {
        let s = pcm_samples(5, 1000);
        assert_eq!(s.len(), 1000);
        let max = s.iter().map(|v| v.unsigned_abs() as i32).max().unwrap();
        assert!(max <= 4095);
        assert!(max > 500, "signal should have meaningful energy");
        // Not constant.
        assert!(s.iter().any(|&v| v != s[0]));
    }

    #[test]
    fn rgb_planes_have_matching_lengths() {
        let (r, g, b) = rgb_planes(9, 128);
        assert_eq!(r.len(), 128);
        assert_eq!(g.len(), 128);
        assert_eq!(b.len(), 128);
    }

    #[test]
    fn residuals_are_in_idct_range() {
        for v in residual_block(13, 256) {
            assert!((-256..=255).contains(&(v as i32)));
        }
    }
}
