//! Corruption-injection suite: every way an on-disk blob can be damaged
//! must degrade to a miss — after which the caller recomputes and the
//! rewrite restores the blob. Nothing in here may panic, and no damaged
//! frame may ever be served as a payload.

use mom_store::{Hasher, Key, Store, NS_RESULT, NS_TRACE};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn temp_dir() -> PathBuf {
    static UNIQUE: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "mom-corruption-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn key_of(text: &str) -> Key {
    let mut h = Hasher::new();
    h.write_str(text);
    h.finish()
}

fn blob_path(dir: &Path, namespace: &str, key: Key) -> PathBuf {
    dir.join(namespace).join(format!("{}.bin", key.to_hex()))
}

/// A store primed with one blob; returns (store, dir, key, payload, path).
fn primed() -> (Store, PathBuf, Key, Vec<u8>, PathBuf) {
    let dir = temp_dir();
    let store = Store::new(Some(dir.clone()));
    let key = key_of("victim");
    let payload: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
    store.put(NS_TRACE, key, payload.clone());
    let path = blob_path(&dir, NS_TRACE, key);
    assert!(path.is_file(), "put must reach the disk tier");
    (store, dir, key, payload, path)
}

/// Reads through a *fresh* store over the same directory, so the lookup
/// cannot be answered by the writer's memory tier.
fn fresh_get(dir: &Path, key: Key) -> Option<Vec<u8>> {
    Store::new(Some(dir.to_path_buf())).get_disk(NS_TRACE, key)
}

#[test]
fn every_single_bit_flip_is_a_miss_and_a_rewrite_recovers() {
    let (_store, dir, key, payload, path) = primed();
    let pristine = fs::read(&path).unwrap();
    // Flip one bit at a sample of positions covering every frame field:
    // magic, version, key echo, length, checksum and payload body.
    let positions: Vec<usize> = (0..pristine.len())
        .step_by(7)
        .chain([pristine.len() - 1])
        .collect();
    for pos in positions {
        let mut damaged = pristine.clone();
        damaged[pos] ^= 0x10;
        fs::write(&path, &damaged).unwrap();
        let reader = Store::new(Some(dir.clone()));
        assert_eq!(
            reader.get_disk(NS_TRACE, key),
            None,
            "bit flip at byte {pos} must not be served"
        );
        let counters = reader.counters(NS_TRACE);
        assert_eq!(counters.invalid, 1, "flip at {pos} counts as corruption");
        assert_eq!(counters.misses, 1, "flip at {pos} counts as a miss");
        assert!(
            !path.is_file(),
            "damaged blob is dropped for a clean rewrite"
        );
        // The caller's recompute-and-rewrite path restores service.
        reader.put_disk(NS_TRACE, key, &payload);
        assert_eq!(fresh_get(&dir, key).as_deref(), Some(payload.as_slice()));
    }
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn truncation_at_every_length_is_a_miss() {
    let (_store, dir, key, _payload, path) = primed();
    let pristine = fs::read(&path).unwrap();
    for len in 0..pristine.len() {
        fs::write(&path, &pristine[..len]).unwrap();
        assert_eq!(fresh_get(&dir, key), None, "truncation to {len} bytes");
        // read_disk deletes the damaged file; restore for the next round.
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &pristine).unwrap();
    }
    // Trailing garbage is just as invalid as a missing tail.
    let mut oversized = pristine.clone();
    oversized.push(0);
    fs::write(&path, &oversized).unwrap();
    assert_eq!(fresh_get(&dir, key), None, "trailing byte");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn wrong_frame_version_is_a_miss() {
    let (_store, dir, key, _payload, path) = primed();
    let mut bytes = fs::read(&path).unwrap();
    // Bytes 4..8 hold the little-endian frame version.
    bytes[4..8].copy_from_slice(&(mom_store::FRAME_VERSION + 1).to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    assert_eq!(fresh_get(&dir, key), None);
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn blob_filed_under_the_wrong_key_is_a_miss() {
    let (store, dir, key, payload, path) = primed();
    // A valid frame of *other* content copied over this key's file: the
    // key echo in the header no longer matches the file name.
    let other = key_of("other");
    store.put(NS_TRACE, other, b"other payload".to_vec());
    fs::copy(blob_path(&dir, NS_TRACE, other), &path).unwrap();
    assert_eq!(
        fresh_get(&dir, key),
        None,
        "foreign frame must not be served"
    );
    // The foreign blob is untouched under its own key.
    assert_eq!(
        Store::new(Some(dir.clone()))
            .get_disk(NS_TRACE, other)
            .as_deref(),
        Some(b"other payload".as_slice())
    );
    // And the victim key recovers through the ordinary rewrite path.
    store.put_disk(NS_TRACE, key, &payload);
    assert_eq!(fresh_get(&dir, key).as_deref(), Some(payload.as_slice()));
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn a_missing_namespace_directory_is_only_a_miss() {
    let dir = temp_dir();
    let store = Store::new(Some(dir.clone()));
    assert_eq!(store.get_disk(NS_RESULT, key_of("nothing")), None);
    assert_eq!(store.counters(NS_RESULT).misses, 1);
    assert_eq!(
        store.counters(NS_RESULT).invalid,
        0,
        "absence is not corruption"
    );
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn concurrent_writers_and_readers_never_observe_partial_frames() {
    let dir = temp_dir();
    let store = Arc::new(Store::new(Some(dir.clone())));
    const KEYS: usize = 16;
    const ROUNDS: usize = 40;
    let payload_of = |i: usize| -> Vec<u8> { vec![i as u8; 256 + i] };
    let keys: Vec<Key> = (0..KEYS).map(|i| key_of(&format!("slot {i}"))).collect();

    // Two writer threads racing over the *same* keys with the same
    // content-addressed payloads (the concurrent-sweep scenario), plus two
    // readers polling through fresh stores so every hit comes off disk.
    let mut handles = Vec::new();
    for _writer in 0..2 {
        let store = Arc::clone(&store);
        let keys = keys.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..ROUNDS {
                for (i, &key) in keys.iter().enumerate() {
                    store.put_disk(NS_RESULT, key, &payload_of(i));
                    // Interleave differently per round to vary the race.
                    if round % 2 == 0 {
                        std::thread::yield_now();
                    }
                }
            }
        }));
    }
    for _reader in 0..2 {
        let dir = dir.clone();
        let keys = keys.clone();
        handles.push(std::thread::spawn(move || {
            for _round in 0..ROUNDS {
                let fresh = Store::new(Some(dir.clone()));
                for (i, &key) in keys.iter().enumerate() {
                    // Either not yet renamed into place (a miss) or the
                    // complete frame — never a torn payload.
                    if let Some(payload) = fresh.get_disk(NS_RESULT, key) {
                        assert_eq!(payload, payload_of(i), "torn read on key {i}");
                    }
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("no thread may panic");
    }

    // After the dust settles every key serves its payload, and no temp
    // files survive.
    let fresh = Store::new(Some(dir.clone()));
    for (i, &key) in keys.iter().enumerate() {
        assert_eq!(fresh.get_disk(NS_RESULT, key), Some(payload_of(i)));
    }
    let leftovers: Vec<_> = fs::read_dir(dir.join(NS_RESULT))
        .unwrap()
        .flatten()
        .filter(|e| e.path().extension().is_none_or(|ext| ext != "bin"))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
    let _ = fs::remove_dir_all(dir);
}
