//! Fill *error*-path suite: the corruption suite proves damaged frames on
//! read degrade to misses; this one proves a failed fill — a partial
//! write or a failed rename, injected deterministically by the fault
//! plane — leaves no temp litter, is retried, and never poisons the
//! memory tier.
//!
//! The fault plane is process-global, so every test serialises on one
//! mutex and clears the plan before returning.

use mom_store::faults::{self, FaultPlan, FaultSite};
use mom_store::{Hasher, Key, Store, NS_RESULT};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn temp_dir() -> PathBuf {
    static UNIQUE: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "mom-faults-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn key_of(text: &str) -> Key {
    let mut h = Hasher::new();
    h.write_str(text);
    h.finish()
}

fn blob_path(dir: &Path, key: Key) -> PathBuf {
    dir.join(NS_RESULT).join(format!("{}.bin", key.to_hex()))
}

/// Files in the namespace directory that are not finished blobs.
fn temp_litter(dir: &Path) -> Vec<PathBuf> {
    match fs::read_dir(dir.join(NS_RESULT)) {
        Ok(entries) => entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_none_or(|ext| ext != "bin"))
            .collect(),
        Err(_) => Vec::new(),
    }
}

#[test]
fn failed_partial_write_leaves_no_litter_and_memory_tier_survives() {
    let _serial = serial();
    let dir = temp_dir();
    let store = Store::new(Some(dir.clone()));
    let key = key_of("partial-write-victim");
    let payload: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();

    // Both the first write and its retry fail mid-write.
    faults::install(FaultPlan::new(11).with_site(FaultSite::StoreWrite, 1.0, None));
    store.put(NS_RESULT, key, payload.clone());
    faults::clear();

    assert!(
        faults::injected_count(FaultSite::StoreWrite) == 0,
        "clear() resets injection counts"
    );
    assert!(
        !blob_path(&dir, key).is_file(),
        "a failed fill must not publish a blob"
    );
    assert!(
        temp_litter(&dir).is_empty(),
        "a failed fill must clean up its temp file"
    );
    // The memory tier is not poisoned: the same store still serves the
    // payload it accepted, torn disk write notwithstanding.
    assert_eq!(
        store.get(NS_RESULT, key).as_deref().map(Vec::as_slice),
        Some(payload.as_slice()),
        "memory tier serves the fill the disk rejected"
    );
    // A fresh store over the directory misses cleanly — no torn frame was
    // ever visible under the blob's final name.
    let fresh = Store::new(Some(dir.clone()));
    assert_eq!(fresh.get_disk(NS_RESULT, key), None);
    assert_eq!(
        fresh.counters(NS_RESULT).invalid,
        0,
        "a miss, not corruption"
    );

    // With the plan gone the ordinary rewrite path restores durability.
    store.put_disk(NS_RESULT, key, &payload);
    assert_eq!(
        Store::new(Some(dir.clone()))
            .get_disk(NS_RESULT, key)
            .as_deref(),
        Some(payload.as_slice())
    );
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn failed_rename_leaves_no_litter() {
    let _serial = serial();
    let dir = temp_dir();
    let store = Store::new(Some(dir.clone()));
    let key = key_of("rename-victim");

    faults::install(FaultPlan::new(12).with_site(FaultSite::StoreRename, 1.0, None));
    store.put(NS_RESULT, key, b"doomed".to_vec());
    let injected = faults::injected_count(FaultSite::StoreRename);
    faults::clear();

    assert!(
        injected >= 2,
        "the write is retried ({injected} attempts injected)"
    );
    assert!(!blob_path(&dir, key).is_file(), "rename never happened");
    assert!(
        temp_litter(&dir).is_empty(),
        "the fully-written temp file is removed when the rename fails"
    );
    assert_eq!(
        store.get(NS_RESULT, key).as_deref().map(Vec::as_slice),
        Some(b"doomed".as_slice()),
        "memory tier unaffected"
    );
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn a_single_write_fault_is_healed_by_the_retry() {
    let _serial = serial();
    let dir = temp_dir();
    let store = Store::new(Some(dir.clone()));
    let key = key_of("retry-heals");

    // Budget of exactly one injection: the first attempt fails, the
    // in-place retry succeeds, and the blob is durable after all.
    faults::install(FaultPlan::new(13).with_site(FaultSite::StoreWrite, 1.0, Some(1)));
    store.put(NS_RESULT, key, b"persisted".to_vec());
    let injected = faults::injected_count(FaultSite::StoreWrite);
    faults::clear();

    assert_eq!(injected, 1, "exactly the budgeted fault fired");
    assert_eq!(
        Store::new(Some(dir.clone()))
            .get_disk(NS_RESULT, key)
            .as_deref(),
        Some(b"persisted".as_slice()),
        "the retry published the blob"
    );
    assert!(temp_litter(&dir).is_empty());
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn injected_read_faults_degrade_to_misses_and_recover() {
    let _serial = serial();
    let dir = temp_dir();
    let store = Store::new(Some(dir.clone()));
    let key = key_of("read-victim");
    store.put(NS_RESULT, key, b"present".to_vec());
    assert!(blob_path(&dir, key).is_file());

    faults::install(FaultPlan::new(14).with_site(FaultSite::StoreRead, 1.0, None));
    let fresh = Store::new(Some(dir.clone()));
    assert_eq!(
        fresh.get_disk(NS_RESULT, key),
        None,
        "an injected read fault is a miss"
    );
    let counters = fresh.counters(NS_RESULT);
    assert_eq!(counters.misses, 1);
    assert_eq!(counters.invalid, 0, "a fault is not corruption");
    faults::clear();

    assert!(
        blob_path(&dir, key).is_file(),
        "the blob itself is untouched by a read fault"
    );
    assert_eq!(
        Store::new(Some(dir.clone()))
            .get_disk(NS_RESULT, key)
            .as_deref(),
        Some(b"present".as_slice()),
        "service recovers the moment the fault clears"
    );
    let _ = fs::remove_dir_all(dir);
}
