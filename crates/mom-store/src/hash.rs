//! Stable 128-bit content hashing.
//!
//! Content keys must be stable across processes, platforms and — as far as
//! possible — compiler versions, so the store does not use
//! `std::hash::Hasher` (whose output is explicitly unspecified).  Instead
//! this module hand-rolls FNV-1a/128: simple, well-known, and more than
//! wide enough that collisions are not a practical concern for the few
//! thousand artifacts a sweep produces.
//!
//! [`Hasher`] offers typed `write_*` helpers that length-prefix variable
//! sized input (strings, byte slices) so adjacent fields cannot alias
//! (`"ab" + "c"` hashes differently from `"a" + "bc"`).

use std::fmt;

/// FNV-1a/128 offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a/128 prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content key addressing one artifact in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub u128);

impl Key {
    /// The key as 32 lowercase hex digits — used as the on-disk file stem.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a 32-digit hex file stem back into a key.
    pub fn from_hex(text: &str) -> Option<Key> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Key)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental FNV-1a/128 hasher producing a [`Key`].
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u128,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Hasher {
        Hasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes (no length prefix — use [`Hasher::write_bytes`] for
    /// variable-length fields).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a length-prefixed byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Feeds a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, text: &str) {
        self.write_bytes(text.as_bytes());
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, value: u8) {
        self.write_raw(&[value]);
    }

    /// Feeds a `u32` in little-endian order.
    pub fn write_u32(&mut self, value: u32) {
        self.write_raw(&value.to_le_bytes());
    }

    /// Feeds a `u64` in little-endian order.
    pub fn write_u64(&mut self, value: u64) {
        self.write_raw(&value.to_le_bytes());
    }

    /// Feeds an `i64` (two's complement, little-endian).
    pub fn write_i64(&mut self, value: i64) {
        self.write_raw(&value.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Feeds a `bool` as one byte.
    pub fn write_bool(&mut self, value: bool) {
        self.write_u8(value as u8);
    }

    /// Feeds an `f64` by exact bit pattern.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Feeds another key (e.g. chaining a content hash into a result key).
    pub fn write_key(&mut self, key: Key) {
        self.write_raw(&key.0.to_le_bytes());
    }

    /// Finishes the hash.
    pub fn finish(&self) -> Key {
        Key(self.state)
    }
}

/// One-shot convenience: hash a byte slice (used for payload checksums).
pub fn hash_bytes(bytes: &[u8]) -> Key {
    let mut h = Hasher::new();
    h.write_raw(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(Hasher::new().finish(), Key(FNV_OFFSET));
    }

    #[test]
    fn known_vector() {
        // FNV-1a/128 of "a" (0x61).
        let mut h = Hasher::new();
        h.write_raw(b"a");
        assert_eq!(h.finish(), Key((FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME)));
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        let mut a = Hasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Hasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_round_trip() {
        let key = hash_bytes(b"momsim");
        assert_eq!(Key::from_hex(&key.to_hex()), Some(key));
        assert_eq!(Key::from_hex("not a key"), None);
        assert_eq!(Key::from_hex(&key.to_hex()[1..]), None);
    }
}
