//! Little-endian byte-codec primitives shared by every artifact codec.
//!
//! The workspace deliberately carries no serialization dependency (the
//! vendored crates are offline shims), so blob formats are hand-rolled:
//! fixed-width little-endian integers, `f64` by exact bit pattern, and
//! `u32`-length-prefixed strings.  [`ByteWriter`] builds a payload,
//! [`ByteReader`] consumes one and reports *every* defect — truncation,
//! an unknown enum tag, trailing garbage — as a [`CodecError`] so callers
//! can degrade a damaged blob to a cache miss instead of panicking.

use std::error::Error;
use std::fmt;

/// A decoding failure. Store consumers treat any variant as "blob is
/// unusable": the artifact is recomputed and rewritten.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before a fixed-width field (truncation).
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// The payload's format version is not the one this build writes.
    BadVersion {
        /// Which codec noticed.
        what: &'static str,
        /// The version found in the payload.
        got: u32,
    },
    /// Bytes remained after the payload was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A decoded value failed a semantic check (e.g. an unknown kernel
    /// name, or stats that do not match the decoded trace).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { what } => {
                write!(f, "payload truncated while decoding {what}")
            }
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            CodecError::BadVersion { what, got } => {
                write!(f, "unsupported {what} format version {got}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after payload")
            }
            CodecError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            CodecError::Invalid(detail) => write!(f, "invalid payload: {detail}"),
        }
    }
}

impl Error for CodecError {}

/// Builds a little-endian payload.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// An empty writer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, value: bool) {
        self.put_u8(value as u8);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u128` little-endian.
    pub fn put_u128(&mut self, value: u128) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `i64` (two's complement, little-endian).
    pub fn put_i64(&mut self, value: i64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Appends an `f64` by exact bit pattern, so warm-served results are
    /// byte-identical to freshly computed ones.
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, text: &str) {
        self.put_u32(text.len() as u32);
        self.buf.extend_from_slice(text.as_bytes());
    }
}

/// Consumes a little-endian payload produced by [`ByteWriter`].
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`CodecError::TrailingBytes`] unless the payload was
    /// consumed exactly.
    pub fn finish(&self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(CodecError::TrailingBytes { remaining }),
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { what });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `bool`; any byte other than 0 or 1 is a [`CodecError::BadTag`].
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what, tag }),
        }
    }

    /// Reads a `u16` little-endian.
    pub fn get_u16(&mut self, what: &'static str) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    /// Reads a `u32` little-endian.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a `u64` little-endian.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads a `u128` little-endian.
    pub fn get_u128(&mut self, what: &'static str) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(
            self.take(16, what)?.try_into().unwrap(),
        ))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads a `usize` stored as `u64`.
    pub fn get_usize(&mut self, what: &'static str) -> Result<usize, CodecError> {
        Ok(self.get_u64(what)? as usize)
    }

    /// Reads an `f64` stored by bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.get_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_bool(true);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 7);
        w.put_u128(u128::MAX - 9);
        w.put_i64(-42);
        w.put_usize(99);
        w.put_f64(-0.125);
        w.put_str("méta");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 0xab);
        assert!(r.get_bool("b").unwrap());
        assert_eq!(r.get_u16("c").unwrap(), 0x1234);
        assert_eq!(r.get_u32("d").unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64("e").unwrap(), u64::MAX - 7);
        assert_eq!(r.get_u128("f").unwrap(), u128::MAX - 9);
        assert_eq!(r.get_i64("g").unwrap(), -42);
        assert_eq!(r.get_usize("h").unwrap(), 99);
        assert_eq!(r.get_f64("i").unwrap().to_bits(), (-0.125f64).to_bits());
        assert_eq!(r.get_str("j").unwrap(), "méta");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(
            r.get_u64("field"),
            Err(CodecError::UnexpectedEof { what: "field" })
        );
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let bytes = [0u8; 3];
        let mut r = ByteReader::new(&bytes);
        r.get_u8("x").unwrap();
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes { remaining: 2 }));
    }

    #[test]
    fn bad_bool_is_a_tag_error() {
        let bytes = [7u8];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.get_bool("flag"),
            Err(CodecError::BadTag {
                what: "flag",
                tag: 7
            })
        );
    }
}
