//! # mom-store — two-tier content-addressed artifact store
//!
//! Simulation produces two kinds of expensive, perfectly reproducible
//! artifacts: verified functional traces (`mom-kernels`) and finished
//! timing-grid points (`mom-bench`).  Both are pure functions of their
//! inputs, so they are stored **content-addressed**: the key is a stable
//! 128-bit hash of everything the artifact depends on (program text, ISA,
//! seed, pipeline configuration, engine version, …) and a changed input
//! simply hashes to a different key — there is no invalidation protocol,
//! stale blobs are just never looked up again (`momsim cache gc` sweeps
//! them out).
//!
//! The store has two tiers:
//!
//! * an **in-memory** tier (a process-wide map of raw blobs) so repeated
//!   lookups inside one process are a hash-map read, and
//! * an **on-disk** tier (one file per blob under
//!   `<dir>/<namespace>/<key>.bin`) so artifacts survive the process —
//!   a warm `momsim sweep` recomputes nothing.
//!
//! Disk blobs are wrapped in a self-validating [frame](store::FRAME_VERSION)
//! (magic, format version, key echo, payload length, payload checksum).
//! *Any* defect — truncation, bit flips, a stale format version, a blob
//! stored under the wrong name — makes the read degrade to a **miss**; the
//! caller recomputes and overwrites.  Writes are atomic (unique temp file +
//! `rename`), so concurrent sweeps sharing one store directory never
//! observe a half-written blob.
//!
//! The crate is dependency-free and knows nothing about traces or
//! simulation results; the typed codecs live with their types
//! (`mom_arch::codec` for traces, `mom_bench`'s result store for grid
//! points) on top of the [`bytes`] primitives here.

#![warn(missing_docs)]

pub mod bytes;
pub mod faults;
pub mod hash;
pub mod store;

pub use bytes::{ByteReader, ByteWriter, CodecError};
pub use faults::{FaultPlan, FaultSite};
pub use hash::{Hasher, Key};
pub use store::{
    bypass_guard, configure, default_dir, global, publish_gauges, BypassGuard, CacheReport,
    GcReport, NamespaceReport, Store, StoreConfig, TierCounters, FRAME_MAGIC, FRAME_VERSION,
    NS_RESULT, NS_TRACE,
};
