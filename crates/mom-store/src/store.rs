//! The two-tier store itself: frame format, atomic disk writes, per
//! namespace hit/miss accounting, the process-global instance and the
//! `gc`/`clear` maintenance operations behind `momsim cache`.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::hash::{hash_bytes, Key};

/// Namespace for verified functional traces (`mom-kernels`).
pub const NS_TRACE: &str = "trace";
/// Namespace for finished benchmark results (`mom-bench` grid points and
/// app-speedup rows).
pub const NS_RESULT: &str = "result";

/// Magic bytes opening every on-disk blob.
pub const FRAME_MAGIC: [u8; 4] = *b"MOMS";
/// On-disk frame format version; bump when the frame layout changes.
/// (Payload formats carry their own versions — this one only covers the
/// envelope.)
pub const FRAME_VERSION: u32 = 1;
/// magic(4) + version(4) + key(16) + payload_len(8) + payload_hash(16).
const FRAME_HEADER_LEN: usize = 48;

/// Hit/miss/fill counters for one namespace, accumulated per process.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierCounters {
    /// Lookups answered by the in-memory tier (including typed memory
    /// tiers layered above the store, reported via
    /// [`Store::note_memory_hit`]).
    pub memory_hits: u64,
    /// Lookups answered by a valid on-disk blob.
    pub disk_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Artifacts computed and written this process.
    pub fills: u64,
    /// On-disk blobs rejected as corrupt/truncated/stale (each also counts
    /// as a miss).
    pub invalid: u64,
}

impl TierCounters {
    /// Total lookups answered from the store (either tier).
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    fn add(&mut self, other: &TierCounters) {
        self.memory_hits += other.memory_hits;
        self.disk_hits += other.disk_hits;
        self.misses += other.misses;
        self.fills += other.fills;
        self.invalid += other.invalid;
    }
}

/// Per-namespace slice of a [`CacheReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceReport {
    /// Namespace name (`trace`, `result`, …).
    pub namespace: String,
    /// This process's hit/miss counters for the namespace.
    pub counters: TierCounters,
    /// Valid-looking blobs currently on disk.
    pub disk_blobs: u64,
    /// Bytes those blobs occupy.
    pub disk_bytes: u64,
}

/// The cache diagnostic surfaced by `momsim cache stats` and
/// `momsim bench`: per-namespace memory hits / disk hits / fills plus the
/// on-disk footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheReport {
    /// The disk tier's directory, if one is configured.
    pub dir: Option<PathBuf>,
    /// Whether the store is currently enabled (`false` under `--cold`).
    pub enabled: bool,
    /// One row per namespace, sorted by name.
    pub namespaces: Vec<NamespaceReport>,
}

impl CacheReport {
    /// Sum of all namespace counters.
    pub fn totals(&self) -> TierCounters {
        let mut total = TierCounters::default();
        for ns in &self.namespaces {
            total.add(&ns.counters);
        }
        total
    }

    /// Total bytes on disk across namespaces.
    pub fn disk_bytes(&self) -> u64 {
        self.namespaces.iter().map(|ns| ns.disk_bytes).sum()
    }

    /// Human-readable table.
    pub fn format(&self) -> String {
        let mut out = String::new();
        match &self.dir {
            Some(dir) => out.push_str(&format!("store: {}", dir.display())),
            None => out.push_str("store: (no disk tier)"),
        }
        if !self.enabled {
            out.push_str(" [disabled]");
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>12}\n",
            "namespace", "mem hits", "disk hits", "misses", "fills", "blobs", "bytes"
        ));
        let mut rows: Vec<&NamespaceReport> = self.namespaces.iter().collect();
        rows.sort_by(|a, b| a.namespace.cmp(&b.namespace));
        for ns in rows {
            out.push_str(&format!(
                "{:<10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>12}\n",
                ns.namespace,
                ns.counters.memory_hits,
                ns.counters.disk_hits,
                ns.counters.misses,
                ns.counters.fills,
                ns.disk_blobs,
                ns.disk_bytes
            ));
        }
        let total = self.totals();
        out.push_str(&format!(
            "{:<10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>12}\n",
            "total",
            total.memory_hits,
            total.disk_hits,
            total.misses,
            total.fills,
            self.namespaces.iter().map(|n| n.disk_blobs).sum::<u64>(),
            self.disk_bytes()
        ));
        out
    }
}

/// Outcome of [`Store::gc`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Blobs (and stray temp files) removed.
    pub removed_files: u64,
    /// Bytes reclaimed.
    pub removed_bytes: u64,
    /// Valid blobs kept.
    pub kept_files: u64,
    /// Bytes still occupied.
    pub kept_bytes: u64,
}

type MemoryTier = RwLock<HashMap<(String, Key), Arc<Vec<u8>>>>;

/// One accounting event, mirrored into the metrics registry for the
/// process-global store (see [`Store::mirror`]).
#[derive(Debug, Clone, Copy)]
enum StoreEvent {
    MemoryHit,
    DiskHit,
    Miss,
    Fill,
    Invalid,
}

/// A two-tier content-addressed blob store.
///
/// `get`/`put` never fail: the disk tier is best-effort (an unreadable or
/// unwritable directory degrades to the memory tier; a damaged blob
/// degrades to a miss). Only the explicit maintenance operations
/// ([`Store::clear`], [`Store::gc`]) surface I/O errors.
#[derive(Debug)]
pub struct Store {
    dir: Option<PathBuf>,
    enabled: bool,
    memory: MemoryTier,
    counters: Mutex<HashMap<String, TierCounters>>,
    tmp_counter: AtomicU64,
    /// Mirror counter bumps into the `mom-obs` metrics registry.  Set only
    /// on the process-global store: throwaway test stores must not pollute
    /// process metrics, and `/metrics` must agree with the global store's
    /// [`CacheReport`].
    observed: bool,
}

impl Store {
    /// A store with an optional disk tier rooted at `dir`.
    pub fn new(dir: Option<PathBuf>) -> Store {
        Store {
            dir,
            enabled: true,
            memory: RwLock::new(HashMap::new()),
            counters: Mutex::new(HashMap::new()),
            tmp_counter: AtomicU64::new(0),
            observed: false,
        }
    }

    /// A store whose `get`/`put` are no-ops (the `--cold` mode). The disk
    /// directory is still remembered so `momsim cache` can inspect it.
    pub fn disabled(dir: Option<PathBuf>) -> Store {
        Store {
            enabled: false,
            ..Store::new(dir)
        }
    }

    /// The disk tier's directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Whether lookups and fills are active (false under `--cold`; see
    /// also [`bypass_guard`] for a scoped override).
    pub fn is_active(&self) -> bool {
        self.enabled && BYPASS_DEPTH.load(Ordering::Relaxed) == 0
    }

    fn blob_path(&self, namespace: &str, key: Key) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|dir| dir.join(namespace).join(format!("{}.bin", key.to_hex())))
    }

    fn bump<F: FnOnce(&mut TierCounters)>(&self, namespace: &str, f: F) {
        let mut counters = self.counters.lock().unwrap();
        f(counters.entry(namespace.to_string()).or_default());
    }

    /// Mirrors one accounting event into the process metrics registry —
    /// only for the [`global`] store (see the `observed` field), and only
    /// on paths already guarded by [`Store::is_active`], so bypassed perf
    /// measurements never touch the registry.
    fn mirror(&self, namespace: &str, event: StoreEvent) {
        if !self.observed {
            return;
        }
        const LOOKUPS: &str = "momsim_store_lookups_total";
        const LOOKUPS_HELP: &str = "Store lookups by namespace and which tier answered.";
        match event {
            StoreEvent::MemoryHit => mom_obs::counter_with(
                LOOKUPS,
                LOOKUPS_HELP,
                &[("namespace", namespace), ("outcome", "memory_hit")],
            )
            .inc(),
            StoreEvent::DiskHit => mom_obs::counter_with(
                LOOKUPS,
                LOOKUPS_HELP,
                &[("namespace", namespace), ("outcome", "disk_hit")],
            )
            .inc(),
            StoreEvent::Miss => mom_obs::counter_with(
                LOOKUPS,
                LOOKUPS_HELP,
                &[("namespace", namespace), ("outcome", "miss")],
            )
            .inc(),
            StoreEvent::Fill => mom_obs::counter_with(
                "momsim_store_fills_total",
                "Artifacts computed and written to the store.",
                &[("namespace", namespace)],
            )
            .inc(),
            StoreEvent::Invalid => {
                mom_obs::counter_with(
                    "momsim_store_invalid_total",
                    "On-disk blobs rejected as corrupt, truncated or stale.",
                    &[("namespace", namespace)],
                )
                .inc();
                self.mirror(namespace, StoreEvent::Miss);
            }
        }
    }

    /// Records a hit in a typed in-memory tier layered above this store
    /// (e.g. the `mom-kernels` trace cache's `Arc<KernelRun>` map), so the
    /// [`CacheReport`] covers both tiers even when the raw-blob memory
    /// tier is skipped.
    pub fn note_memory_hit(&self, namespace: &str) {
        if self.is_active() {
            self.bump(namespace, |c| c.memory_hits += 1);
            self.mirror(namespace, StoreEvent::MemoryHit);
        }
    }

    /// Two-tier lookup: memory first, then disk (promoting a disk hit into
    /// the memory tier). Returns `None` on a miss or when the store is
    /// inactive.
    pub fn get(&self, namespace: &str, key: Key) -> Option<Arc<Vec<u8>>> {
        if !self.is_active() {
            return None;
        }
        if let Some(blob) = self
            .memory
            .read()
            .unwrap()
            .get(&(namespace.to_string(), key))
            .cloned()
        {
            self.bump(namespace, |c| c.memory_hits += 1);
            self.mirror(namespace, StoreEvent::MemoryHit);
            return Some(blob);
        }
        match self.read_disk(namespace, key) {
            Some(payload) => {
                let blob = Arc::new(payload);
                self.memory
                    .write()
                    .unwrap()
                    .insert((namespace.to_string(), key), Arc::clone(&blob));
                Some(blob)
            }
            None => None,
        }
    }

    /// Disk-only lookup, for callers that keep their own typed memory tier.
    /// Counts a disk hit or a miss; never touches the raw memory tier.
    pub fn get_disk(&self, namespace: &str, key: Key) -> Option<Vec<u8>> {
        if !self.is_active() {
            return None;
        }
        self.read_disk(namespace, key)
    }

    fn read_disk(&self, namespace: &str, key: Key) -> Option<Vec<u8>> {
        let _span = mom_obs::span_fmt("store", || format!("read-disk {namespace}"));
        let path = self.blob_path(namespace, key);
        // An injected read fault behaves like an unreadable file: the
        // lookup degrades to a miss and the caller recomputes (the blob
        // itself stays on disk, untouched).
        let faulted = crate::faults::should_inject(crate::faults::FaultSite::StoreRead);
        let decoded = path.as_deref().filter(|_| !faulted).and_then(|p| {
            let bytes = fs::read(p).ok()?;
            Some(decode_frame(&bytes, key))
        });
        match decoded {
            Some(Ok(payload)) => {
                self.bump(namespace, |c| c.disk_hits += 1);
                self.mirror(namespace, StoreEvent::DiskHit);
                Some(payload)
            }
            Some(Err(())) => {
                // Damaged blob: drop it so the rewrite starts clean, and
                // report the corruption distinctly from a plain miss.
                if let Some(p) = path {
                    let _ = fs::remove_file(p);
                }
                self.bump(namespace, |c| {
                    c.invalid += 1;
                    c.misses += 1;
                });
                self.mirror(namespace, StoreEvent::Invalid);
                None
            }
            None => {
                self.bump(namespace, |c| c.misses += 1);
                self.mirror(namespace, StoreEvent::Miss);
                None
            }
        }
    }

    /// Stores a blob in both tiers. Disk errors are swallowed (the store
    /// is an accelerator, not a system of record).
    pub fn put(&self, namespace: &str, key: Key, payload: Vec<u8>) {
        if !self.is_active() {
            return;
        }
        let _span = mom_obs::span_fmt("store", || format!("put {namespace}"));
        self.write_disk(namespace, key, &payload);
        self.memory
            .write()
            .unwrap()
            .insert((namespace.to_string(), key), Arc::new(payload));
        self.bump(namespace, |c| c.fills += 1);
        self.mirror(namespace, StoreEvent::Fill);
    }

    /// Stores a blob on disk only, for callers with their own memory tier.
    pub fn put_disk(&self, namespace: &str, key: Key, payload: &[u8]) {
        if !self.is_active() {
            return;
        }
        let _span = mom_obs::span_fmt("store", || format!("put-disk {namespace}"));
        self.write_disk(namespace, key, payload);
        self.bump(namespace, |c| c.fills += 1);
        self.mirror(namespace, StoreEvent::Fill);
    }

    fn write_disk(&self, namespace: &str, key: Key, payload: &[u8]) {
        let Some(path) = self.blob_path(namespace, key) else {
            return;
        };
        if self.try_write_disk(&path, key, payload).is_ok() {
            return;
        }
        // One retry: a transient failure (a full tmpfs, an injected fault)
        // should not silently cost the artifact its durability.  A second
        // failure is final — the store is an accelerator, so the payload
        // still serves from the memory tier and a later fill recomputes.
        if self.observed {
            mom_obs::counter_with(
                "momsim_store_write_retries_total",
                "Disk-tier fills retried after a write failure.",
                &[("namespace", namespace)],
            )
            .inc();
        }
        let _ = self.try_write_disk(&path, key, payload);
    }

    fn try_write_disk(&self, path: &Path, key: Key, payload: &[u8]) -> io::Result<()> {
        let parent = path.parent().expect("blob path always has a parent");
        fs::create_dir_all(parent)?;
        // Unique temp name per (process, write): concurrent sweeps sharing
        // the directory each rename a fully written file into place, so
        // readers only ever observe complete frames (last writer wins, and
        // both writers produced the same content-addressed bytes anyway).
        let tmp = parent.join(format!(
            ".tmp-{}-{}-{}",
            key.to_hex(),
            process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            use crate::faults::{injected_io_error, FaultSite};
            let mut file = fs::File::create(&tmp)?;
            let frame = encode_frame(key, payload);
            if let Some(fault) = injected_io_error(FaultSite::StoreWrite, "store write") {
                // A realistic mid-write failure: some bytes land, then the
                // write errors, leaving a torn temp file for cleanup.
                let _ = file.write_all(&frame[..frame.len() / 2]);
                return Err(fault);
            }
            file.write_all(&frame)?;
            file.sync_all()?;
            drop(file);
            if let Some(fault) = injected_io_error(FaultSite::StoreRename, "store rename") {
                return Err(fault);
            }
            fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// This process's counters for one namespace.
    pub fn counters(&self, namespace: &str) -> TierCounters {
        self.counters
            .lock()
            .unwrap()
            .get(namespace)
            .copied()
            .unwrap_or_default()
    }

    /// The full diagnostic: process counters plus a disk scan.
    pub fn report(&self) -> CacheReport {
        let mut names: Vec<String> = self.counters.lock().unwrap().keys().cloned().collect();
        if let Some(dir) = &self.dir {
            if let Ok(entries) = fs::read_dir(dir) {
                for entry in entries.flatten() {
                    if entry.path().is_dir() {
                        if let Some(name) = entry.file_name().to_str() {
                            names.push(name.to_string());
                        }
                    }
                }
            }
        }
        names.sort();
        names.dedup();
        let namespaces = names
            .into_iter()
            .map(|namespace| {
                let (disk_blobs, disk_bytes) = self.scan_namespace(&namespace);
                NamespaceReport {
                    counters: self.counters(&namespace),
                    namespace,
                    disk_blobs,
                    disk_bytes,
                }
            })
            .collect();
        CacheReport {
            dir: self.dir.clone(),
            enabled: self.enabled,
            namespaces,
        }
    }

    fn scan_namespace(&self, namespace: &str) -> (u64, u64) {
        let Some(dir) = self.dir.as_ref().map(|d| d.join(namespace)) else {
            return (0, 0);
        };
        let Ok(entries) = fs::read_dir(dir) else {
            return (0, 0);
        };
        let (mut blobs, mut bytes) = (0, 0);
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "bin") {
                if let Ok(meta) = entry.metadata() {
                    blobs += 1;
                    bytes += meta.len();
                }
            }
        }
        (blobs, bytes)
    }

    /// Deletes every blob (both tiers). Returns (files, bytes) removed.
    pub fn clear(&self) -> io::Result<(u64, u64)> {
        self.memory.write().unwrap().clear();
        let Some(dir) = &self.dir else {
            return Ok((0, 0));
        };
        let (mut files, mut bytes) = (0, 0);
        for ns in namespace_dirs(dir)? {
            for entry in fs::read_dir(&ns)?.flatten() {
                let path = entry.path();
                if path.is_file() {
                    bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
                    fs::remove_file(&path)?;
                    files += 1;
                }
            }
        }
        Ok((files, bytes))
    }

    /// Removes every on-disk file that is not a valid, current-version
    /// blob stored under its own key: damaged frames, stale format
    /// versions, misnamed files and abandoned temp files.
    pub fn gc(&self) -> io::Result<GcReport> {
        self.memory.write().unwrap().clear();
        let mut report = GcReport::default();
        let Some(dir) = &self.dir else {
            return Ok(report);
        };
        for ns in namespace_dirs(dir)? {
            for entry in fs::read_dir(&ns)?.flatten() {
                let path = entry.path();
                if !path.is_file() {
                    continue;
                }
                let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
                if blob_is_valid(&path) {
                    report.kept_files += 1;
                    report.kept_bytes += len;
                } else {
                    fs::remove_file(&path)?;
                    report.removed_files += 1;
                    report.removed_bytes += len;
                }
            }
        }
        Ok(report)
    }
}

fn namespace_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    match fs::read_dir(dir) {
        Ok(entries) => Ok(entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Is this file a well-formed, current-version blob stored under its own
/// key (`<key>.bin` whose frame echoes `key`)?
fn blob_is_valid(path: &Path) -> bool {
    let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
        return false;
    };
    if path.extension().is_none_or(|e| e != "bin") {
        return false;
    }
    let Some(key) = Key::from_hex(stem) else {
        return false;
    };
    match fs::read(path) {
        Ok(bytes) => decode_frame(&bytes, key).is_ok(),
        Err(_) => false,
    }
}

/// Wraps a payload in the self-validating frame.
fn encode_frame(key: Key, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    frame.extend_from_slice(&key.0.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&hash_bytes(payload).0.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Validates a frame read for `expected_key` and extracts the payload.
/// Any defect — truncation, bad magic, stale version, key mismatch,
/// checksum mismatch, trailing bytes — is an `Err(())`, which the store
/// turns into a miss.
fn decode_frame(bytes: &[u8], expected_key: Key) -> Result<Vec<u8>, ()> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(());
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(());
    }
    if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != FRAME_VERSION {
        return Err(());
    }
    if u128::from_le_bytes(bytes[8..24].try_into().unwrap()) != expected_key.0 {
        return Err(());
    }
    let len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    let checksum = u128::from_le_bytes(bytes[32..48].try_into().unwrap());
    let payload = &bytes[FRAME_HEADER_LEN..];
    if payload.len() != len {
        return Err(());
    }
    if hash_bytes(payload).0 != checksum {
        return Err(());
    }
    Ok(payload.to_vec())
}

// ---------------------------------------------------------------------------
// Process-global store + scoped bypass.

static GLOBAL: OnceLock<Store> = OnceLock::new();
static PENDING_CONFIG: Mutex<Option<StoreConfig>> = Mutex::new(None);
static BYPASS_DEPTH: AtomicUsize = AtomicUsize::new(0);

/// Configuration for the process-global store, normally set by `momsim`'s
/// `--store DIR` / `--cold` flags before any simulation runs.
#[derive(Debug, Clone, Default)]
pub struct StoreConfig {
    /// Disk tier directory; `None` means [`default_dir`].
    pub dir: Option<PathBuf>,
    /// `false` disables the store entirely (`--cold`).
    pub cold: bool,
}

/// Installs the configuration the global store will be built from.
/// Fails if the global store was already instantiated with a different
/// effective configuration.
pub fn configure(config: StoreConfig) -> Result<(), String> {
    let mut pending = PENDING_CONFIG.lock().unwrap();
    if let Some(store) = GLOBAL.get() {
        let dir = config.dir.unwrap_or_else(default_dir);
        if store.dir() != Some(dir.as_path()) || store.enabled == config.cold {
            return Err(
                "artifact store already initialised with a different configuration; \
                 pass --store/--cold before any simulation runs"
                    .to_string(),
            );
        }
        return Ok(());
    }
    *pending = Some(config);
    Ok(())
}

/// The process-global store, created on first use from the pending
/// [`configure`]d options (or the defaults: [`default_dir`], enabled).
pub fn global() -> &'static Store {
    GLOBAL.get_or_init(|| {
        let config = PENDING_CONFIG.lock().unwrap().take().unwrap_or_default();
        let dir = config.dir.unwrap_or_else(default_dir);
        let mut store = if config.cold {
            Store::disabled(Some(dir))
        } else {
            Store::new(Some(dir))
        };
        store.observed = true;
        store
    })
}

/// Refreshes the registry's store gauges (`momsim_store_disk_blobs` /
/// `momsim_store_disk_bytes` per namespace) from a disk scan of the
/// process-global store.  Called at scrape/snapshot time — gauges describe
/// a current footprint, not a stream of events.
pub fn publish_gauges() {
    let report = global().report();
    for ns in &report.namespaces {
        mom_obs::gauge_with(
            "momsim_store_disk_blobs",
            "Valid blobs currently in the store's disk tier.",
            &[("namespace", &ns.namespace)],
        )
        .set(ns.disk_blobs as i64);
        mom_obs::gauge_with(
            "momsim_store_disk_bytes",
            "Bytes occupied by the store's disk tier.",
            &[("namespace", &ns.namespace)],
        )
        .set(ns.disk_bytes as i64);
    }
}

/// The default disk-tier directory: `target/mom-store` next to the
/// workspace's `Cargo.lock` (walking up from the current directory), so
/// the store lives under the build tree — ignored by git and invisible to
/// the CI BENCH freshness diff. Overridable with `MOMSIM_STORE`.
pub fn default_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MOMSIM_STORE") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe = cwd.as_path();
    loop {
        if probe.join("Cargo.lock").is_file() {
            return probe.join("target").join("mom-store");
        }
        match probe.parent() {
            Some(parent) => probe = parent,
            None => return cwd.join("target").join("mom-store"),
        }
    }
}

/// While held, *every* store in the process behaves as disabled. Used by
/// the perf subsystem so wall-time measurements exercise the real
/// simulation path rather than reading yesterday's results back.
#[derive(Debug)]
pub struct BypassGuard(());

/// Suspends the store for the guard's lifetime (re-entrant).
pub fn bypass_guard() -> BypassGuard {
    BYPASS_DEPTH.fetch_add(1, Ordering::Relaxed);
    BypassGuard(())
}

impl Drop for BypassGuard {
    fn drop(&mut self) {
        BYPASS_DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Hasher;
    use std::sync::atomic::AtomicU32;

    fn temp_store() -> (Store, PathBuf) {
        static UNIQUE: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mom-store-test-{}-{}",
            process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        (Store::new(Some(dir.clone())), dir)
    }

    fn key_of(text: &str) -> Key {
        let mut h = Hasher::new();
        h.write_str(text);
        h.finish()
    }

    #[test]
    fn memory_then_disk_then_miss() {
        let (store, dir) = temp_store();
        let key = key_of("blob");
        assert!(store.get(NS_TRACE, key).is_none());
        store.put(NS_TRACE, key, b"payload".to_vec());
        assert_eq!(store.get(NS_TRACE, key).unwrap().as_slice(), b"payload");
        // A second store over the same directory has a cold memory tier
        // but hits the disk tier.
        let reborn = Store::new(Some(dir.clone()));
        assert_eq!(reborn.get(NS_TRACE, key).unwrap().as_slice(), b"payload");
        let counters = reborn.counters(NS_TRACE);
        assert_eq!(counters.disk_hits, 1);
        // And the promoted copy now serves from memory.
        assert_eq!(reborn.get(NS_TRACE, key).unwrap().as_slice(), b"payload");
        assert_eq!(reborn.counters(NS_TRACE).memory_hits, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn disabled_store_never_hits() {
        let (store, dir) = temp_store();
        let cold = Store::disabled(store.dir().map(Path::to_path_buf));
        let key = key_of("cold");
        cold.put(NS_RESULT, key, b"x".to_vec());
        assert!(cold.get(NS_RESULT, key).is_none());
        assert_eq!(cold.counters(NS_RESULT), TierCounters::default());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn bypass_guard_suspends_and_restores() {
        let (store, dir) = temp_store();
        let key = key_of("bypass");
        store.put(NS_RESULT, key, b"x".to_vec());
        {
            let _guard = bypass_guard();
            assert!(store.get(NS_RESULT, key).is_none());
            let _inner = bypass_guard();
            assert!(!store.is_active());
        }
        assert!(store.get(NS_RESULT, key).is_some());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn report_counts_blobs_and_bytes() {
        let (store, dir) = temp_store();
        store.put(NS_TRACE, key_of("a"), vec![0u8; 10]);
        store.put(NS_RESULT, key_of("b"), vec![0u8; 20]);
        let report = store.report();
        assert_eq!(report.namespaces.len(), 2);
        let trace = report
            .namespaces
            .iter()
            .find(|n| n.namespace == NS_TRACE)
            .unwrap();
        assert_eq!(trace.disk_blobs, 1);
        assert_eq!(trace.disk_bytes, (FRAME_HEADER_LEN + 10) as u64);
        assert_eq!(report.totals().fills, 2);
        assert!(report.format().contains("trace"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn clear_and_gc() {
        let (store, dir) = temp_store();
        let good = key_of("good");
        store.put(NS_TRACE, good, b"keep".to_vec());
        // A stray temp file and a misnamed copy are both garbage.
        let ns = dir.join(NS_TRACE);
        fs::write(ns.join(".tmp-zzz-1-1"), b"junk").unwrap();
        let wrong = ns.join(format!("{}.bin", key_of("other").to_hex()));
        fs::copy(ns.join(format!("{}.bin", good.to_hex())), &wrong).unwrap();
        let gc = store.gc().unwrap();
        assert_eq!(gc.removed_files, 2);
        assert_eq!(gc.kept_files, 1);
        assert!(store.get(NS_TRACE, good).is_some());
        let (files, _) = store.clear().unwrap();
        assert_eq!(files, 1);
        assert!(store.get(NS_TRACE, good).is_none());
        let _ = fs::remove_dir_all(dir);
    }
}
