//! A seeded, deterministic fault-injection plane.
//!
//! Chaos testing a service whose whole value proposition is byte-identical
//! reproducibility needs faults that are themselves reproducible: the same
//! seed and the same sequence of draws must inject the same failures.  A
//! [`FaultPlan`] names a seed plus, per [`FaultSite`], a probability and an
//! optional budget (most injections allowed).  Each site keeps its own
//! draw counter; draw `n` at site `s` hashes `(seed, s, n)` through a
//! splitmix64 finaliser, so whether one site fires never perturbs another
//! site's sequence, and a retried operation sees a *fresh* draw (retrying
//! past an injected fault is the whole point).
//!
//! The plane is process-global and **off by default**: with no plan
//! installed, [`should_inject`] is a single relaxed atomic load — the hot
//! store path pays nothing.  Every injection is counted in
//! `momsim_faults_injected_total{site}` so a chaos run can prove over
//! `/metrics` that faults actually happened.
//!
//! The injection sites live at the seams the rest of the workspace already
//! has: the store's disk read / write / rename steps (this crate), worker
//! compute ([`maybe_panic`] / [`maybe_delay`] in `mom-serve`'s pool), and
//! the daemon's HTTP accept/read path.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A disk-tier read degrades to a miss.
    StoreRead,
    /// A disk-tier fill fails mid-write (a partial temp file is left for
    /// the cleanup path to collect).
    StoreWrite,
    /// The atomic rename publishing a finished fill fails.
    StoreRename,
    /// A worker's unit compute panics.
    WorkerPanic,
    /// A worker's unit compute stalls for the plan's `delay-ms`.
    WorkerDelay,
    /// The daemon drops an accepted connection before reading it.
    HttpAccept,
    /// The daemon drops a connection mid-request-read.
    HttpRead,
}

/// How many distinct [`FaultSite`]s exist.
pub const SITE_COUNT: usize = 7;

impl FaultSite {
    /// Every site, in a fixed order (the per-site state arrays index by
    /// this order).
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::StoreRead,
        FaultSite::StoreWrite,
        FaultSite::StoreRename,
        FaultSite::WorkerPanic,
        FaultSite::WorkerDelay,
        FaultSite::HttpAccept,
        FaultSite::HttpRead,
    ];

    /// The site's spec/metric-label name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::StoreRead => "store-read",
            FaultSite::StoreWrite => "store-write",
            FaultSite::StoreRename => "store-rename",
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::WorkerDelay => "worker-delay",
            FaultSite::HttpAccept => "http-accept",
            FaultSite::HttpRead => "http-read",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::StoreRead => 0,
            FaultSite::StoreWrite => 1,
            FaultSite::StoreRename => 2,
            FaultSite::WorkerPanic => 3,
            FaultSite::WorkerDelay => 4,
            FaultSite::HttpAccept => 5,
            FaultSite::HttpRead => 6,
        }
    }
}

impl std::str::FromStr for FaultSite {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultSite, String> {
        FaultSite::ALL
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown fault site '{s}' (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// One site's injection rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteRule {
    /// Probability in `[0, 1]` that a draw at this site injects.
    pub probability: f64,
    /// Most injections allowed at this site (`None` = unbounded).  A
    /// budget lets a chaos run front-load failures and then dry up, so
    /// later phases (report replay, drain) see a healthy system.
    pub budget: Option<u64>,
}

/// A complete fault plan: seed, per-site rules and the injected delay.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic draw sequence.
    pub seed: u64,
    /// Injected stall length for [`FaultSite::WorkerDelay`].
    pub delay: Duration,
    rules: [Option<SiteRule>; SITE_COUNT],
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An empty plan (no site injects) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay: Duration::from_millis(10),
            rules: [None; SITE_COUNT],
        }
    }

    /// Adds or replaces one site's rule.
    pub fn with_site(
        mut self,
        site: FaultSite,
        probability: f64,
        budget: Option<u64>,
    ) -> FaultPlan {
        self.rules[site.index()] = Some(SiteRule {
            probability: probability.clamp(0.0, 1.0),
            budget,
        });
        self
    }

    /// The rule installed for `site`, if any.
    pub fn rule(&self, site: FaultSite) -> Option<SiteRule> {
        self.rules[site.index()]
    }

    /// Whether any site can inject at all.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(Option::is_none)
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    /// Parses the `--inject` spec: comma-separated `key=value` entries.
    ///
    /// * `seed=N` — the draw seed (default 0);
    /// * `delay-ms=N` — the [`FaultSite::WorkerDelay`] stall (default 10);
    /// * `<site>=P` or `<site>=P:BUDGET` — install a rule, e.g.
    ///   `store-read=0.05` or `worker-panic=0.1:20`.
    fn from_str(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry '{entry}' is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("fault spec seed '{value}': {e}"))?;
                }
                "delay-ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|e| format!("fault spec delay-ms '{value}': {e}"))?;
                    plan.delay = Duration::from_millis(ms);
                }
                site => {
                    let site: FaultSite = site.parse()?;
                    let (prob, budget) = match value.split_once(':') {
                        Some((p, b)) => {
                            let budget: u64 = b
                                .parse()
                                .map_err(|e| format!("{} budget '{b}': {e}", site.name()))?;
                            (p, Some(budget))
                        }
                        None => (value, None),
                    };
                    let probability: f64 = prob
                        .parse()
                        .map_err(|e| format!("{} probability '{prob}': {e}", site.name()))?;
                    if !(0.0..=1.0).contains(&probability) {
                        return Err(format!(
                            "{} probability {probability} is outside [0, 1]",
                            site.name()
                        ));
                    }
                    plan = plan.with_site(site, probability, budget);
                }
            }
        }
        Ok(plan)
    }
}

struct PlanState {
    plan: FaultPlan,
    /// Draws made per site (the deterministic sequence position).
    draws: [u64; SITE_COUNT],
    /// Faults injected per site (checked against the budget).
    injected: [u64; SITE_COUNT],
}

/// Fast-path flag: `false` means no plan is installed and every
/// [`should_inject`] call is a single relaxed load.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

/// Installs a plan, replacing any previous one and resetting every site's
/// draw and injection counters.  An empty plan is equivalent to [`clear`].
pub fn install(plan: FaultPlan) {
    let mut state = STATE.lock().unwrap();
    if plan.is_empty() {
        ACTIVE.store(false, Ordering::Release);
        *state = None;
        return;
    }
    *state = Some(PlanState {
        plan,
        draws: [0; SITE_COUNT],
        injected: [0; SITE_COUNT],
    });
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed plan; the plane returns to its zero-cost state.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *STATE.lock().unwrap() = None;
}

/// Whether a plan is installed.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// How many faults the installed plan has injected at `site` (0 with no
/// plan).  Test observability; `/metrics` carries the same counts.
pub fn injected_count(site: FaultSite) -> u64 {
    STATE
        .lock()
        .unwrap()
        .as_ref()
        .map(|state| state.injected[site.index()])
        .unwrap_or(0)
}

/// The splitmix64 finaliser: a high-quality 64-bit mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Draws at `site`: `true` when the installed plan injects a fault here.
/// With no plan installed this is one relaxed atomic load.
#[inline]
pub fn should_inject(site: FaultSite) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    should_inject_slow(site)
}

#[cold]
fn should_inject_slow(site: FaultSite) -> bool {
    let mut guard = STATE.lock().unwrap();
    let Some(state) = guard.as_mut() else {
        return false;
    };
    let i = site.index();
    let Some(rule) = state.plan.rules[i] else {
        return false;
    };
    let draw = state.draws[i];
    state.draws[i] += 1;
    if rule
        .budget
        .is_some_and(|budget| state.injected[i] >= budget)
    {
        return false;
    }
    // Deterministic uniform draw in [0, 1): position `draw` of site `i`
    // under this seed always lands on the same side of the probability.
    let r =
        mix(state.plan.seed ^ mix(((i as u64 + 1) << 32) | draw)) as f64 / (u64::MAX as f64 + 1.0);
    if r >= rule.probability {
        return false;
    }
    state.injected[i] += 1;
    drop(guard);
    mom_obs::counter_with(
        "momsim_faults_injected_total",
        "Faults injected by the fault plane, per site.",
        &[("site", site.name())],
    )
    .inc();
    mom_obs::log::warn("faults", &format!("injected {} fault", site.name()));
    true
}

/// Panics with an identifiable message when the plan injects at `site`.
/// The supervised worker path catches it like any real panic.
pub fn maybe_panic(site: FaultSite) {
    if should_inject(site) {
        panic!("injected fault: {} panic", site.name());
    }
}

/// Sleeps for the plan's `delay` when it injects at `site`.
pub fn maybe_delay(site: FaultSite) {
    if should_inject(site) {
        let delay = STATE
            .lock()
            .unwrap()
            .as_ref()
            .map(|state| state.plan.delay)
            .unwrap_or(Duration::from_millis(10));
        std::thread::sleep(delay);
    }
}

/// `Some(io::Error)` when the plan injects at `site` — the store's disk
/// seams splice this into their `io::Result` chains.
pub fn injected_io_error(site: FaultSite, what: &str) -> Option<io::Error> {
    should_inject(site)
        .then(|| io::Error::other(format!("injected fault: {what} ({})", site.name())))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan is process-global state, so tests touching it serialise.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn inactive_plane_never_injects() {
        let _serial = serial();
        clear();
        assert!(!is_active());
        for site in FaultSite::ALL {
            assert!(!should_inject(site));
        }
    }

    #[test]
    fn draws_are_deterministic_and_roughly_calibrated() {
        let _serial = serial();
        let plan = FaultPlan::new(42).with_site(FaultSite::StoreRead, 0.25, None);
        install(plan.clone());
        let first: Vec<bool> = (0..400)
            .map(|_| should_inject(FaultSite::StoreRead))
            .collect();
        let hits = first.iter().filter(|&&b| b).count();
        assert!(
            (40..=160).contains(&hits),
            "p=0.25 over 400 draws gave {hits} injections"
        );
        assert_eq!(injected_count(FaultSite::StoreRead), hits as u64);
        // Reinstalling the same plan resets the sequence: same draws out.
        install(plan);
        let second: Vec<bool> = (0..400)
            .map(|_| should_inject(FaultSite::StoreRead))
            .collect();
        assert_eq!(first, second, "same seed, same sequence");
        // A different seed produces a different sequence.
        install(FaultPlan::new(43).with_site(FaultSite::StoreRead, 0.25, None));
        let third: Vec<bool> = (0..400)
            .map(|_| should_inject(FaultSite::StoreRead))
            .collect();
        assert_ne!(first, third, "different seed, different sequence");
        clear();
    }

    #[test]
    fn budgets_dry_up_and_sites_are_independent() {
        let _serial = serial();
        install(
            FaultPlan::new(7)
                .with_site(FaultSite::StoreWrite, 1.0, Some(3))
                .with_site(FaultSite::WorkerPanic, 0.0, None),
        );
        let hits = (0..50)
            .filter(|_| should_inject(FaultSite::StoreWrite))
            .count();
        assert_eq!(hits, 3, "budget caps injections");
        assert_eq!(injected_count(FaultSite::StoreWrite), 3);
        assert!(!should_inject(FaultSite::WorkerPanic), "p=0 never injects");
        assert!(
            !should_inject(FaultSite::StoreRename),
            "unruled sites never inject"
        );
        assert!(injected_io_error(FaultSite::StoreRead, "x").is_none());
        clear();
    }

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        let plan: FaultPlan = "seed=42, store-read=0.05, worker-panic=0.1:20, delay-ms=25"
            .parse()
            .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.delay, Duration::from_millis(25));
        assert_eq!(
            plan.rule(FaultSite::StoreRead),
            Some(SiteRule {
                probability: 0.05,
                budget: None
            })
        );
        assert_eq!(
            plan.rule(FaultSite::WorkerPanic),
            Some(SiteRule {
                probability: 0.1,
                budget: Some(20)
            })
        );
        assert!(plan.rule(FaultSite::StoreWrite).is_none());

        assert!("frobnicate=0.5".parse::<FaultPlan>().is_err());
        assert!("store-read".parse::<FaultPlan>().is_err());
        assert!("store-read=1.5".parse::<FaultPlan>().is_err());
        assert!("store-read=0.5:x".parse::<FaultPlan>().is_err());
        assert!("".parse::<FaultPlan>().unwrap().is_empty());
    }

    #[test]
    fn injected_panic_is_catchable() {
        let _serial = serial();
        install(FaultPlan::new(1).with_site(FaultSite::WorkerPanic, 1.0, None));
        let caught = std::panic::catch_unwind(|| maybe_panic(FaultSite::WorkerPanic));
        assert!(caught.is_err(), "maybe_panic must panic at p=1");
        clear();
        maybe_panic(FaultSite::WorkerPanic); // no plan: no panic
    }
}
